"""Command-line interface: ``sqlog-clean``.

Subcommands:

* ``generate`` — synthesise a SkyServer-shaped log to CSV/JSONL/columnar;
* ``clean``    — run the cleaning pipeline on a log file or columnar
  store, write the clean log and print the Table 5-style overview;
  ``--checkpoint-dir`` / ``--resume`` make streaming runs kill-resilient;
* ``convert``  — convert a log between CSV, JSONL and the columnar store;
* ``patterns`` — print the top patterns/antipatterns of a log;
* ``cluster``  — run the downstream clustering comparison.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, List, Optional

from ..analysis.experiment import run_downstream_experiment
from ..antipatterns.base import DetectionContext
from ..errors import QuarantineChannel
from ..log.io import write_csv, write_jsonl
from ..log.models import LogRecord, QueryLog
from ..patterns.sws import SwsConfig
from ..pipeline.config import PipelineConfig
from ..pipeline.framework import CleaningPipeline
from ..store import CheckpointError, open_log
from ..workload.generator import WorkloadConfig, generate
from ..workload.schema import skyserver_catalog


def _read_log(
    path: str,
    errors: str = "strict",
    channel: Optional[QuarantineChannel] = None,
) -> QueryLog:
    with open_log(path, errors=errors, channel=channel) as source:
        return source.read()


def _output_format(path: str) -> str:
    """The format implied by an *output* path's extension.

    Unlike input sniffing there is nothing on disk to inspect yet, so
    anything that is not ``.csv`` / ``.jsonl`` becomes a columnar store
    directory.
    """
    if path.endswith(".jsonl"):
        return "jsonl"
    if path.endswith(".csv"):
        return "csv"
    return "columnar"


def _write_records(
    records: Iterable[LogRecord], path: str, fmt: Optional[str] = None
) -> None:
    from ..store.columnar import write_columnar

    fmt = fmt or _output_format(path)
    if fmt == "jsonl":
        write_jsonl(records, path)
    elif fmt == "csv":
        write_csv(records, path)
    else:
        write_columnar(records, path)


def _write_log(log: QueryLog, path: str) -> None:
    _write_records(log, path)


def _default_config(
    dedup: float,
    use_schema: bool,
    sws: bool,
    error_policy: str = "strict",
) -> PipelineConfig:
    detection = DetectionContext(
        key_columns=frozenset(skyserver_catalog().key_column_names())
        if use_schema
        else None
    )
    return PipelineConfig(
        dedup_threshold=dedup,
        detection=detection,
        sws=SwsConfig() if sws else None,
        error_policy=error_policy,
    )


def cmd_generate(args: argparse.Namespace) -> int:
    result = generate(WorkloadConfig(seed=args.seed, scale=args.scale))
    _write_log(result.log, args.output)
    counts = result.truth.count_by_label()
    print(f"wrote {len(result.log):,} queries to {args.output}")
    for label in sorted(counts):
        print(f"  planted {label:<14} {counts[label]:,}")
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    import json

    from ..obs import JsonlSink, Recorder
    from ..pipeline.api import clean
    from ..pipeline.config import ExecutionConfig

    config = _default_config(
        args.dedup_threshold,
        args.skyserver_schema,
        args.sws,
        args.error_policy,
    )
    if args.streaming and args.parallel:
        print("choose one of --streaming / --parallel", file=sys.stderr)
        return 2
    mode = "streaming" if args.streaming else "parallel" if args.parallel else "batch"
    execution_kwargs = {"mode": mode, "workers": args.workers}
    if args.no_parse_cache:
        execution_kwargs["parse_cache"] = False
    if args.no_lazy_parse:
        execution_kwargs["lazy_parse"] = False
    if args.parse_cache_size is not None:
        execution_kwargs["parse_cache_size"] = args.parse_cache_size
    if args.template_dict is not None:
        execution_kwargs["template_dict"] = args.template_dict
    if args.transfer is not None:
        execution_kwargs["transfer"] = args.transfer
    if args.no_pool_reuse:
        execution_kwargs["pool_reuse"] = False
    try:
        execution = ExecutionConfig(**execution_kwargs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.checkpoint_dir and mode != "streaming":
        print(
            "--checkpoint-dir requires --streaming (batch and parallel "
            "runs have no serialisable mid-run state)",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    recorder = Recorder(sinks=[JsonlSink(sys.stderr)] if args.trace else [])
    # The input path goes straight into clean(): the non-batch executors
    # stream it out of core, and the checkpoint layer needs the source
    # (not a materialised log) to fingerprint and to seek on resume.
    try:
        result = clean(
            args.input,
            config,
            execution=execution,
            recorder=recorder,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    except CheckpointError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    recorder.close()  # flush the final metrics event to the trace sinks
    if args.metrics_json:
        metrics = result.metrics.as_dict()
        violations = result.metrics.conservation_violations()
        if violations:
            metrics["conservation_violations"] = violations
        metrics_path = Path(args.metrics_json)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(metrics, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote per-stage metrics to {args.metrics_json}")
    quarantine = result.quarantine
    if args.quarantine_json:
        payload = {"error_policy": args.error_policy}
        payload.update(quarantine.as_dict())
        quarantine_path = Path(args.quarantine_json)
        quarantine_path.parent.mkdir(parents=True, exist_ok=True)
        quarantine_path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote quarantine report to {args.quarantine_json}")
    if args.error_policy == "quarantine":
        reasons = ", ".join(
            f"{reason} {count:,}"
            for reason, count in sorted(quarantine.by_reason().items())
        )
        print(
            f"quarantined {len(quarantine):,} records"
            + (f" ({reasons})" if reasons else "")
        )
    if args.output:
        _write_log(result.clean_log, args.output)
        print(
            f"wrote clean log ({len(result.clean_log):,} queries) to {args.output}"
        )
    if mode == "streaming":
        stats = result.streaming_stats
        print(
            f"streamed {stats.records_in:,} records -> {stats.records_out:,} "
            f"(dup {stats.duplicates_removed:,}, syntax {stats.syntax_errors:,}, "
            f"non-select {stats.non_select:,}, solved {stats.instances_solved:,}; "
            f"peak open queries {stats.max_open_queries:,})"
        )
        return 0
    if mode == "parallel":
        pstats = result.parallel_stats
        timings = " ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in pstats.timings.as_dict().items()
        )
        print(
            f"parallel-cleaned {pstats.records_in:,} records -> "
            f"{pstats.records_out:,} with {pstats.workers} workers over "
            f"{pstats.shard_count} shards in {pstats.wall_seconds:.2f}s "
            f"({pstats.throughput:,.0f} records/s; "
            f"{pstats.bytes_shipped:,} payload bytes shipped, "
            f"{pstats.shm_segments} shm segments; stage seconds summed "
            f"across workers: {timings})"
        )
        return 0
    print(result.overview().format())
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    count = 0

    def counted(chunks: Iterable[List[LogRecord]]) -> Iterable[LogRecord]:
        nonlocal count
        for chunk in chunks:
            count += len(chunk)
            yield from chunk

    with open_log(args.input) as source:
        _write_records(counted(source.open_chunks()), args.output, args.to)
    print(f"wrote {count:,} records to {args.output}")
    return 0


def cmd_patterns(args: argparse.Namespace) -> int:
    log = _read_log(args.input)
    config = _default_config(args.dedup_threshold, args.skyserver_schema, True)
    result = CleaningPipeline(config).run(log)
    print(f"{'#':>3} {'freq':>8} {'pop':>5} {'ips':>4}  type            skeleton")
    for rank, stats in enumerate(result.registry.top(args.top), start=1):
        kinds = "/".join(sorted(stats.antipattern_types)) or "-"
        print(
            f"{rank:>3} {stats.frequency:>8} {stats.user_popularity:>5} "
            f"{stats.distinct_ips:>4}  {kinds:<15} {stats.skeletons[0][:90]}"
        )
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    log = _read_log(args.input)
    config = _default_config(args.dedup_threshold, args.skyserver_schema, False)
    report = run_downstream_experiment(
        log, thresholds=tuple(args.thresholds), config=config
    )
    print(f"{'threshold':>9}  " + "  ".join(f"{v:>18}" for v in report.series))
    for threshold in args.thresholds:
        cells = []
        for variant in report.series:
            result = report.result(variant, threshold)
            cells.append(
                f"{result.cluster_count:>6} cl {result.average_size:>7.1f} avg"
            )
        print(f"{threshold:>9.1f}  " + "  ".join(f"{c:>18}" for c in cells))
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    from ..analysis.traffic import traffic_report
    from ..pipeline.framework import parse_log

    log = _read_log(args.input)
    parsed = parse_log(log).queries
    report = traffic_report(log, parsed, top=args.top)
    print(f"queries: {report.total_queries:,}   users: {report.distinct_users:,}")
    busiest = report.busiest_day
    if busiest:
        print(f"busiest day: {busiest[0]} ({busiest[1]:,} queries)")
    print(
        f"sessions: {report.sessions.count:,} "
        f"(median {report.sessions.median_queries:g} queries, "
        f"median duration {report.sessions.median_duration:.0f}s)"
    )
    print(
        f"top-10 users issue {report.top_user_share(10):.1%} of the traffic"
    )
    print("\ntop users:")
    for user, volume in report.top_users[: args.top]:
        print(f"  {volume:>8,}  {user}")
    print("\ntop tables:")
    for table, volume in report.top_tables[: args.top]:
        print(f"  {volume:>8,}  {table}")
    return 0


def cmd_bots(args: argparse.Namespace) -> int:
    from ..analysis.behavior import BehaviorConfig, classify_users

    log = _read_log(args.input)
    config = _default_config(args.dedup_threshold, args.skyserver_schema, True)
    result = CleaningPipeline(config).run(log)
    verdicts = classify_users(
        result, BehaviorConfig(use_shape_features=not args.no_shape_features)
    )
    ranked = sorted(
        verdicts.values(), key=lambda v: (-v.score, -v.activity.query_count)
    )
    print(
        f"{'user':<24} {'verdict':<7} {'score':>5} {'queries':>8} "
        f"{'gap(s)':>8} {'diversity':>9} {'flagged':>8}"
    )
    for verdict in ranked[: args.top]:
        activity = verdict.activity
        gap = (
            f"{activity.median_gap:8.1f}"
            if activity.median_gap != float("inf")
            else "     inf"
        )
        print(
            f"{verdict.user:<24} {'BOT' if verdict.is_bot else 'human':<7} "
            f"{verdict.score:>5.1f} {activity.query_count:>8} {gap} "
            f"{activity.template_diversity:>9.2f} "
            f"{activity.antipattern_share:>8.2f}"
        )
    bots = sum(1 for v in verdicts.values() if v.is_bot)
    print(f"\n{bots} of {len(verdicts)} users classified as bots")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from ..pipeline.report import export_report

    log = _read_log(args.input)
    config = _default_config(args.dedup_threshold, args.skyserver_schema, True)
    result = CleaningPipeline(config).run(log)
    written = export_report(result, args.output_dir)
    for name, path in sorted(written.items()):
        print(f"wrote {name:<16} {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sqlog-clean",
        description="Detect and clean antipatterns in an SQL query log.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a SkyServer-shaped log")
    gen.add_argument("output", help="output file (.csv or .jsonl)")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.set_defaults(func=cmd_generate)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("input", help="log file (.csv or .jsonl)")
        p.add_argument("--dedup-threshold", type=float, default=1.0)
        p.add_argument(
            "--skyserver-schema",
            action="store_true",
            help="use the synthetic SkyServer schema's key attributes "
            "for the Stifle key check",
        )

    clean = sub.add_parser("clean", help="run the cleaning pipeline")
    common(clean)
    clean.add_argument("-o", "--output", help="write the clean log here")
    clean.add_argument("--sws", action="store_true", help="also flag SWS patterns")
    clean.add_argument(
        "--streaming",
        action="store_true",
        help="use the bounded-memory streaming cleaner (no pattern "
        "registry / SWS / overview statistics)",
    )
    clean.add_argument(
        "--parallel",
        action="store_true",
        help="hash-shard the log by user and clean on several CPU cores "
        "(no pattern registry / SWS / overview statistics)",
    )
    clean.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for --parallel (0 = one per CPU)",
    )
    clean.add_argument(
        "--transfer",
        choices=["pickle", "shm"],
        default=None,
        help="how --parallel shards reach the workers: pickle ships "
        "each shard's columnar buffer as one pickle-5 object, shm hands "
        "workers a shared-memory segment (output identical either way)",
    )
    clean.add_argument(
        "--no-pool-reuse",
        action="store_true",
        help="give this run a private worker pool instead of the warm "
        "process-wide one (the warm pool is reused across runs and "
        "shut down atexit)",
    )
    clean.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write the run's per-stage metrics ledger (counters, "
        "antipatterns by label, wall times) as JSON to PATH",
    )
    clean.add_argument(
        "--error-policy",
        choices=["strict", "lenient", "quarantine"],
        default="strict",
        help="what to do with unreadable/invalid/unparsable records: "
        "strict raises, lenient drops and counts, quarantine drops, "
        "counts and captures them for auditing",
    )
    clean.add_argument(
        "--quarantine-json",
        metavar="PATH",
        help="write everything the run set aside (reasons + records) "
        "as JSON to PATH (most useful with --error-policy quarantine)",
    )
    clean.add_argument(
        "--trace",
        action="store_true",
        help="stream span-style stage trace events as JSON lines to stderr",
    )
    clean.add_argument(
        "--no-parse-cache",
        action="store_true",
        help="disable the fingerprint-keyed parse fast path (every "
        "statement takes the full parser; output is identical either way)",
    )
    clean.add_argument(
        "--no-lazy-parse",
        action="store_true",
        help="materialise SQL text and AST eagerly on every parse-cache "
        "hit instead of deferring them until a stage asks (output is "
        "identical either way)",
    )
    clean.add_argument(
        "--parse-cache-size",
        type=int,
        default=None,
        metavar="N",
        help="max cached statement templates per cache instance "
        "(default 4096; one cache per run, per streaming instance, "
        "or per parallel shard)",
    )
    clean.add_argument(
        "--template-dict",
        metavar="PATH",
        default=None,
        help="persistent template dictionary sidecar: preload the parse "
        "cache from PATH when it exists and re-save it after the run "
        "(batch/streaming; parallel preloads only).  A stale or corrupt "
        "dictionary falls back to a cold start — output is identical "
        "either way",
    )
    clean.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        default=None,
        help="persist per-chunk progress into PATH so a killed run can "
        "be resumed (requires --streaming)",
    )
    clean.add_argument(
        "--resume",
        action="store_true",
        help="continue the run recorded in --checkpoint-dir instead of "
        "starting over",
    )
    clean.set_defaults(func=cmd_clean)

    convert = sub.add_parser(
        "convert",
        help="convert a log between CSV, JSONL and the columnar store",
    )
    convert.add_argument(
        "input", help="log input (.csv / .jsonl file or columnar store)"
    )
    convert.add_argument(
        "output",
        help="output path; .csv and .jsonl select those formats, "
        "anything else becomes a columnar store directory",
    )
    convert.add_argument(
        "--to",
        choices=["csv", "jsonl", "columnar"],
        default=None,
        help="output format (default: inferred from the output path)",
    )
    convert.set_defaults(func=cmd_convert)

    patterns = sub.add_parser("patterns", help="print the top patterns")
    common(patterns)
    patterns.add_argument("--top", type=int, default=30)
    patterns.set_defaults(func=cmd_patterns)

    traffic = sub.add_parser(
        "traffic", help="traffic-report statistics (volumes, sessions, tables)"
    )
    traffic.add_argument("input", help="log file (.csv or .jsonl)")
    traffic.add_argument("--top", type=int, default=10)
    traffic.set_defaults(func=cmd_traffic)

    bots = sub.add_parser("bots", help="classify users as humans or bots")
    common(bots)
    bots.add_argument("--top", type=int, default=25)
    bots.add_argument(
        "--no-shape-features",
        action="store_true",
        help="duration/volume features only (the traffic-report baseline)",
    )
    bots.set_defaults(func=cmd_bots)

    report = sub.add_parser("report", help="export a full CSV report")
    common(report)
    report.add_argument("output_dir", help="directory for the CSV files")
    report.set_defaults(func=cmd_report)

    cluster = sub.add_parser("cluster", help="downstream clustering comparison")
    common(cluster)
    cluster.add_argument(
        "--thresholds",
        type=float,
        nargs="+",
        default=[0.1, 0.5, 0.9],
    )
    cluster.set_defaults(func=cmd_cluster)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``sqlog-clean`` command."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
