"""Command-line entry points."""

from .main import main

__all__ = ["main"]
