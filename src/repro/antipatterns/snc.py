"""Searching-nullable-columns detection — Definition 16 (Section 5.4).

SNC is the paper's worked example of extending the framework: a
*single-query* antipattern whose WHERE clause compares a column to NULL
with ``=`` or ``<>``.  Since neither returns true for NULL operands, the
query cannot express the (obvious) intention; the solving solution
rewrites to ``IS NULL`` / ``IS NOT NULL``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..patterns.models import Block, ParsedQuery
from .base import DetectionContext
from .types import SNC, AntipatternInstance


def has_snc_shape(query: ParsedQuery) -> bool:
    """True when any predicate compares against NULL using = or <>.

    Answered through :meth:`ParsedQuery.null_predicate_count` — a
    skeleton-level fact, so the lazy parse path never has to build an
    AST just to rule a query out.
    """
    return query.null_predicate_count() > 0


class SncDetector:
    """Flags every query with an ``= NULL`` / ``<> NULL`` predicate."""

    label = SNC

    def detect(
        self, blocks: Sequence[Block], context: DetectionContext
    ) -> List[AntipatternInstance]:
        instances: List[AntipatternInstance] = []
        for block in blocks:
            for query in block.queries:
                if has_snc_shape(query):
                    instances.append(
                        AntipatternInstance(
                            label=SNC,
                            queries=(query,),
                            solvable=True,
                            details={
                                "predicates": query.null_predicate_count()
                            },
                        )
                    )
        return instances
