"""Antipattern definitions, detectors and the extension registry."""

from .base import DetectionContext, Detector, default_detectors, run_detectors
from .cth import CthCensusRow, CthDetector, classify_candidate, cth_census
from .snc import SncDetector, has_snc_shape
from .stifle import StifleDetector, classify_pair, has_stifle_shape
from .types import (
    CTH_CANDIDATE,
    CTH_REAL,
    DF_STIFLE,
    DS_STIFLE,
    DW_STIFLE,
    SNC,
    SOLVABLE_LABELS,
    AntipatternInstance,
    minimal_period,
)

__all__ = [
    "DetectionContext",
    "Detector",
    "default_detectors",
    "run_detectors",
    "CthCensusRow",
    "CthDetector",
    "classify_candidate",
    "cth_census",
    "SncDetector",
    "has_snc_shape",
    "StifleDetector",
    "classify_pair",
    "has_stifle_shape",
    "CTH_CANDIDATE",
    "CTH_REAL",
    "DF_STIFLE",
    "DS_STIFLE",
    "DW_STIFLE",
    "SNC",
    "SOLVABLE_LABELS",
    "AntipatternInstance",
    "minimal_period",
]
