"""Common types of the antipattern layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, TypeVar

from ..patterns.models import ParsedQuery

#: Canonical labels, as used in the paper's tables.
DW_STIFLE = "DW-Stifle"
DS_STIFLE = "DS-Stifle"
DF_STIFLE = "DF-Stifle"
CTH_CANDIDATE = "CTH-candidate"
CTH_REAL = "CTH"
SNC = "SNC"

SOLVABLE_LABELS = frozenset({DW_STIFLE, DS_STIFLE, DF_STIFLE, SNC})


_T = TypeVar("_T")


def minimal_period(sequence: Sequence[_T]) -> Tuple[_T, ...]:
    """The shortest unit whose repetition spells ``sequence``.

    ``("a","b","a","b")`` → ``("a","b")``; non-periodic sequences return
    themselves.  Used to map an antipattern instance back to the pattern
    identity the miner registered.  Works on any equality-comparable
    elements — fingerprint strings and interned ints alike.
    """
    length = len(sequence)
    for period in range(1, length + 1):
        if length % period:
            continue
        unit = tuple(sequence[:period])
        if all(
            tuple(sequence[i : i + period]) == unit
            for i in range(period, length, period)
        ):
            return unit
    return tuple(sequence)


@dataclass(frozen=True)
class AntipatternInstance:
    """One detected occurrence of an antipattern in the log.

    :param label: one of the label constants above.
    :param queries: the instance's queries, in log order.
    :param solvable: True when a rewrite rule exists (the three Stifle
        classes and SNC; CTH is detected but needs domain knowledge).
    :param details: detector-specific extras (e.g. the CTH oracle verdict
        or the stifle's filter column).
    """

    label: str
    queries: Tuple[ParsedQuery, ...]
    solvable: bool
    details: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("an antipattern instance needs at least one query")

    @property
    def unit(self) -> Tuple[str, ...]:
        """Pattern identity: minimal period of the template sequence."""
        return minimal_period([query.template_id for query in self.queries])

    @property
    def unit_ids(self) -> Optional[Tuple[int, ...]]:
        """Pattern identity over the run's interned template ids — the
        representation the registry keys on — or ``None`` when any query
        was built outside a pipeline run (no shared interner, so int
        identity would be meaningless)."""
        ids = [query.interned_id for query in self.queries]
        if min(ids) < 0:
            return None
        return minimal_period(ids)

    @property
    def user(self) -> str:
        return self.queries[0].user

    @property
    def start_seq(self) -> int:
        """Log position of the first query — the solve-order key of
        Section 5.5 ("solving starts with the antipattern which appears
        in the log first")."""
        return self.queries[0].record.seq

    def record_seqs(self) -> Tuple[int, ...]:
        return tuple(query.record.seq for query in self.queries)
