"""Circuitous-Treasure-Hunt detection — Definition 15 and Section 6.6.

A CTH candidate is a pattern (SQ1, …, SQn) where

* SQ1 ≠ SQ2 (the first query differs from the follow-ups),
* every follow-up has exactly one predicate, θ = 'equality',
* the follow-ups' filter columns appear in SQ1's SELECT clause — the hint
  that the result of the first query feeds the others (a join computed
  outside the database).

Re-querying is ruled out (Section 1), so only *candidates* can be
detected.  The paper resolves candidates to real CTHs by expert judgement
(28 of 50); the experts' published rule — "the decision regarding the next
statement is predefined", evidenced by zero think-time between first query
and follow-up (Table 9 vs Table 10) — is mechanised here as
:func:`classify_candidate`, and the workload generator's ground truth lets
the benchmarks score it like Fig. 2(d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..patterns.models import Block, ParsedQuery
from .base import DetectionContext
from .types import CTH_CANDIDATE, AntipatternInstance


def _followup_matches(first: ParsedQuery, follow: ParsedQuery) -> bool:
    """Does ``follow`` look like it consumes ``first``'s result?"""
    predicate = follow.equality_filter
    if predicate is None or predicate.column is None:
        return False
    # SQ1 ≠ SQ2 (Definition 15's first axiom).  Template identity is an
    # int compare when both queries carry run-scoped interned ids (the
    # pipeline always interns); the fingerprint strings are the fallback
    # for hand-built queries.
    first_id = first.interned_id
    follow_id = follow.interned_id
    if first_id >= 0 and follow_id >= 0:
        if follow_id == first_id:
            return False
    elif follow.template_id == first.template_id:
        return False
    column = predicate.column.name.lower()
    return column in first.outputs or "*" in first.outputs


#: Default think-time bound (seconds) of the real-CTH oracle: Table 10's
#: real candidate has a zero gap, Table 9's false one 27 seconds.
DEFAULT_THINK_TIME = 2.0


def classify_candidate(
    instance: AntipatternInstance, think_time: float = DEFAULT_THINK_TIME
) -> bool:
    """The mechanised expert rule: a candidate is a *real* CTH when the
    first follow-up arrives within ``think_time`` seconds of the first
    query — no human reflection in between, so the decision about the next
    statement was predefined (Section 6.6, Example 17)."""
    first, followups = instance.queries[0], instance.queries[1:]
    if not followups:
        return False
    gap = followups[0].timestamp - first.timestamp
    return gap <= think_time


class CthDetector:
    """Scans blocks for first-query + follow-up-run shapes."""

    label = CTH_CANDIDATE

    def __init__(self, think_time: float = DEFAULT_THINK_TIME) -> None:
        self.think_time = think_time

    def detect(
        self, blocks: Sequence[Block], context: DetectionContext
    ) -> List[AntipatternInstance]:
        instances: List[AntipatternInstance] = []
        for block in blocks:
            instances.extend(self._scan_block(block, context))
        return instances

    def _scan_block(
        self, block: Block, context: DetectionContext
    ) -> List[AntipatternInstance]:
        queries = block.queries
        instances: List[AntipatternInstance] = []
        index = 0
        while index < len(queries) - 1:
            first = queries[index]
            end = index
            while (
                end + 1 < len(queries)
                and end - index < context.cth_max_followups
                and _followup_matches(first, queries[end + 1])
            ):
                end += 1
            if end > index:
                run = queries[index : end + 1]
                instance = AntipatternInstance(
                    label=CTH_CANDIDATE,
                    queries=run,
                    solvable=False,
                    details={
                        "followups": end - index,
                        "first_template": first.template_id,
                        "followup_template": queries[index + 1].template_id,
                    },
                )
                verdict = classify_candidate(instance, self.think_time)
                instance.details["oracle_real"] = verdict
                instances.append(instance)
                # The follow-up run may itself open a new hunt; resume at
                # its first query so chained hunts are all found.
                index = index + 1
            else:
                index += 1
        return instances


@dataclass
class CthCensusRow:
    """Aggregate of one CTH candidate *pattern* (first template +
    follow-up template), the unit Fig. 2(d) ranks."""

    key: Tuple[str, str]
    first_skeleton: str
    followup_skeleton: str
    frequency: int = 0
    users: Set[str] = None  # type: ignore[assignment]
    oracle_real_votes: int = 0

    def __post_init__(self) -> None:
        if self.users is None:
            self.users = set()

    @property
    def user_popularity(self) -> int:
        return len(self.users)

    @property
    def oracle_real(self) -> bool:
        """Majority vote of the per-instance oracle."""
        return self.oracle_real_votes * 2 > self.frequency


def cth_census(instances: Sequence[AntipatternInstance]) -> List[CthCensusRow]:
    """Aggregate CTH candidate instances into ranked pattern rows."""
    rows: Dict[Tuple[str, str], CthCensusRow] = {}
    for instance in instances:
        if instance.label != CTH_CANDIDATE:
            continue
        key = (
            str(instance.details["first_template"]),
            str(instance.details["followup_template"]),
        )
        row = rows.get(key)
        if row is None:
            row = CthCensusRow(
                key=key,
                first_skeleton=instance.queries[0].template.skeleton_sql,
                followup_skeleton=instance.queries[1].template.skeleton_sql,
            )
            rows[key] = row
        row.frequency += 1
        row.users.add(instance.user)
        if instance.details.get("oracle_real"):
            row.oracle_real_votes += 1
    ranked = sorted(rows.values(), key=lambda r: -r.frequency)
    return ranked
