"""Stifle detection — Definitions 11–14.

A Stifle (Definition 11) is a pattern (SQ1, …, SQn) where every query has

* exactly one predicate (CP = 1),
* with the equality operator (θ = 'equality'),
* filtering a *key* attribute (waived when no schema is available).

The class is determined by which clause differs across the run:

* **DW-Stifle** (Definition 12): same SC, FC and SWC, different WHERE
  *values* — the classic get-by-id loop of Example 5/9.
* **DS-Stifle** (Definition 13): same FC and WC (constants included!),
  different SELECT clauses — Example 11 reads two column sets of the same
  row.
* **DF-Stifle** (Definition 14): same WC, different FROM clauses —
  Example 13 reads the same object from redundant tables.

Detection scans each block for maximal runs of consecutive queries of the
stifle shape whose adjacent pairs agree on one class.  Runs never overlap
each other (the scan consumes queries), but they may overlap CTH
candidates — the paper's Table 2 shows exactly that double marking.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..patterns.models import Block, ParsedQuery
from ..skeleton.features import is_key_filter
from .base import DetectionContext
from .types import (
    DF_STIFLE,
    DS_STIFLE,
    DW_STIFLE,
    AntipatternInstance,
)


def has_stifle_shape(query: ParsedQuery, context: DetectionContext) -> bool:
    """CP = 1, θ = equality, filter column is a key attribute."""
    predicate = query.equality_filter
    if predicate is None:
        return False
    return is_key_filter(predicate, context.key_columns)


def classify_pair(first: ParsedQuery, second: ParsedQuery) -> Optional[str]:
    """Which Stifle class (if any) the adjacent pair belongs to.

    The clause comparisons follow Definitions 12–14 exactly, using the
    canonical clause renderings (identifiers case-folded, constants
    preserved) so that formatting noise never separates clauses.
    """
    same_sc = first.clauses.sc == second.clauses.sc
    same_fc = first.clauses.fc == second.clauses.fc
    same_wc = first.clauses.wc == second.clauses.wc
    same_swc = first.template.swc == second.template.swc

    if same_sc and same_fc and same_swc and not same_wc:
        return DW_STIFLE
    if same_fc and same_wc and not same_sc:
        return DS_STIFLE
    if same_wc and not same_fc:
        return DF_STIFLE
    return None


class StifleDetector:
    """Detects all three Stifle classes in one pass per block."""

    label = "Stifle"

    def detect(
        self, blocks: Sequence[Block], context: DetectionContext
    ) -> List[AntipatternInstance]:
        instances: List[AntipatternInstance] = []
        for block in blocks:
            instances.extend(self._scan_block(block, context))
        return instances

    def _scan_block(
        self, block: Block, context: DetectionContext
    ) -> List[AntipatternInstance]:
        queries = block.queries
        instances: List[AntipatternInstance] = []
        index = 0
        while index < len(queries) - 1:
            if not has_stifle_shape(queries[index], context):
                index += 1
                continue
            run_class = None
            end = index
            while end + 1 < len(queries):
                nxt = queries[end + 1]
                if not has_stifle_shape(nxt, context):
                    break
                pair_class = classify_pair(queries[end], nxt)
                if pair_class is None:
                    break
                if run_class is None:
                    run_class = pair_class
                elif pair_class != run_class:
                    break
                end += 1
            length = end - index + 1
            if run_class is not None and length >= context.min_run_length:
                run = queries[index : end + 1]
                instances.append(
                    AntipatternInstance(
                        label=run_class,
                        queries=run,
                        solvable=True,
                        details={
                            "filter_column": run[0].equality_filter.column.name,  # type: ignore[union-attr]
                            "run_length": length,
                        },
                    )
                )
                index = end + 1
            else:
                index += 1
        return instances
