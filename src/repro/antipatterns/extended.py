"""Extended antipattern catalog — the Section 5.4 recipe, applied.

The paper demonstrates extensibility with one worked example (SNC,
Definition 16).  This module applies the same recipe — formal definition,
detection rule, solving rule where one exists — to further antipatterns
from the SQL-antipattern literature the paper cites (Karwin, *SQL
Antipatterns*, Pragmatic Bookshelf 2010; Brass & Goldberg's semantic-error
catalog).  All of them are *single-query* antipatterns, like SNC; they
plug into the pipeline via ``PipelineConfig(detectors=default_detectors()
+ extended_detectors())``.

=====================  =============================================  ========
Label                  Definition (informal)                          Solvable
=====================  =============================================  ========
Implicit-Columns       ``SELECT *`` in FROM over base tables          with a catalog
Poor-Mans-Search       ``LIKE`` with a leading wildcard               no
Random-Selection       ``ORDER BY rand()/newid()``                    no
Ambiguous-GroupBy      non-aggregated SELECT column ∉ GROUP BY        no
Cartesian-Product      FROM sources with no connecting predicate     no
Redundant-Distinct     DISTINCT on a GROUP BY of the same columns     yes
Having-No-Aggregate    HAVING without any aggregate                   yes
=====================  =============================================  ========
"""

from __future__ import annotations

from typing import List, Sequence

from ..patterns.models import Block, ParsedQuery
from ..sqlparser import ast_nodes as ast
from ..sqlparser.dialect import contains_aggregate
from .base import DetectionContext
from .types import AntipatternInstance

IMPLICIT_COLUMNS = "Implicit-Columns"
POOR_MANS_SEARCH = "Poor-Mans-Search"
RANDOM_SELECTION = "Random-Selection"
AMBIGUOUS_GROUP_BY = "Ambiguous-GroupBy"
CARTESIAN_PRODUCT = "Cartesian-Product"
REDUNDANT_DISTINCT = "Redundant-Distinct"
HAVING_NO_AGGREGATE = "Having-No-Aggregate"

#: Non-deterministic ordering functions across common dialects.
_RANDOM_FUNCTIONS = frozenset({"rand", "newid", "random", "checksum"})


class _SingleQueryDetector:
    """Base for detectors that classify queries one at a time."""

    label: str = ""
    solvable: bool = False

    def matches(self, query: ParsedQuery, context: DetectionContext) -> bool:
        raise NotImplementedError

    def detect(
        self, blocks: Sequence[Block], context: DetectionContext
    ) -> List[AntipatternInstance]:
        instances: List[AntipatternInstance] = []
        for block in blocks:
            for query in block.queries:
                if self.matches(query, context):
                    instances.append(
                        AntipatternInstance(
                            label=self.label,
                            queries=(query,),
                            solvable=self.solvable,
                        )
                    )
        return instances


class ImplicitColumnsDetector(_SingleQueryDetector):
    """``SELECT *`` over base tables (Karwin: *Implicit Columns*).

    Star projections break when the schema evolves and ship unneeded
    columns.  Flagged only when the FROM clause consists of base tables
    (a star over an explicit derived table is a local idiom, and
    ``count(*)`` never matches — stars inside function calls are fine).
    """

    label = IMPLICIT_COLUMNS
    solvable = True  # with a catalog: see repro.rewrite.extended_rewrites

    def matches(self, query: ParsedQuery, context: DetectionContext) -> bool:
        select = query.select
        if not select.from_sources:
            return False
        has_star = any(isinstance(item.expr, ast.Star) for item in select.items)
        if not has_star:
            return False

        def base_tables_only(source: ast.TableSource) -> bool:
            if isinstance(source, ast.TableName):
                return True
            if isinstance(source, ast.Join):
                return base_tables_only(source.left) and base_tables_only(
                    source.right
                )
            return False

        return all(base_tables_only(s) for s in select.from_sources)


class PoorMansSearchDetector(_SingleQueryDetector):
    """``LIKE '%…'`` — a leading wildcard defeats any index (Karwin:
    *Poor Man's Search Engine*)."""

    label = POOR_MANS_SEARCH

    def matches(self, query: ParsedQuery, context: DetectionContext) -> bool:
        where = query.select.where
        if where is None:
            return False
        for node in where.walk():
            if isinstance(node, ast.Like) and isinstance(node.pattern, ast.Literal):
                pattern = node.pattern.value
                if pattern.startswith(("%", "_")):
                    return True
        return False


class RandomSelectionDetector(_SingleQueryDetector):
    """``ORDER BY rand()`` — sorts the whole table to pick random rows
    (Karwin: *Random Selection*)."""

    label = RANDOM_SELECTION

    def matches(self, query: ParsedQuery, context: DetectionContext) -> bool:
        for item in query.select.order_by:
            for node in item.expr.walk():
                if (
                    isinstance(node, ast.FunctionCall)
                    and node.name.lower() in _RANDOM_FUNCTIONS
                ):
                    return True
        return False


class AmbiguousGroupByDetector(_SingleQueryDetector):
    """A non-aggregated SELECT column that is not in GROUP BY — ambiguous
    per the SQL standard (Brass & Goldberg's catalog; MySQL's infamous
    permissiveness made it a classic log artifact)."""

    label = AMBIGUOUS_GROUP_BY

    def matches(self, query: ParsedQuery, context: DetectionContext) -> bool:
        select = query.select
        if not select.group_by:
            return False
        grouped = {
            expr.key()
            for expr in select.group_by
            if isinstance(expr, ast.ColumnRef)
        }
        grouped_names = {key[1] for key in grouped}
        for item in select.items:
            expr = item.expr
            if contains_aggregate(expr):
                continue
            if isinstance(expr, ast.ColumnRef):
                if expr.key() not in grouped and expr.name.lower() not in grouped_names:
                    return True
            elif isinstance(expr, ast.Star):
                return True
        return False


class CartesianProductDetector(_SingleQueryDetector):
    """Comma-joined FROM sources with no predicate connecting them — an
    (almost always accidental) cartesian product.

    Detection: ≥ 2 top-level FROM sources and the WHERE clause contains
    no column-to-column equality referencing two different aliases.
    """

    label = CARTESIAN_PRODUCT

    def matches(self, query: ParsedQuery, context: DetectionContext) -> bool:
        select = query.select
        if len(select.from_sources) < 2:
            return False
        where = select.where
        if where is None:
            return True
        for node in where.walk():
            if (
                isinstance(node, ast.Comparison)
                and node.op == "="
                and isinstance(node.left, ast.ColumnRef)
                and isinstance(node.right, ast.ColumnRef)
            ):
                left_table = node.left.table
                right_table = node.right.table
                if left_table != right_table:
                    return False  # a connecting predicate exists
        return True


class RedundantDistinctDetector(_SingleQueryDetector):
    """``SELECT DISTINCT a, b … GROUP BY a, b`` — the grouping already
    guarantees distinctness; DISTINCT only adds a sort."""

    label = REDUNDANT_DISTINCT
    solvable = True

    def matches(self, query: ParsedQuery, context: DetectionContext) -> bool:
        select = query.select
        if not (select.distinct and select.group_by):
            return False
        grouped = {
            expr.name.lower()
            for expr in select.group_by
            if isinstance(expr, ast.ColumnRef)
        }
        for item in select.items:
            expr = item.expr
            if contains_aggregate(expr):
                continue  # aggregates are per-group, hence distinct
            if isinstance(expr, ast.ColumnRef) and expr.name.lower() in grouped:
                continue
            return False
        return True


class HavingNoAggregateDetector(_SingleQueryDetector):
    """``HAVING`` with no aggregate — the filter belongs in WHERE, where
    it prunes rows *before* grouping."""

    label = HAVING_NO_AGGREGATE
    solvable = True

    def matches(self, query: ParsedQuery, context: DetectionContext) -> bool:
        having = query.select.having
        if having is None:
            return False
        return not contains_aggregate(having)


def extended_detectors() -> List[_SingleQueryDetector]:
    """All extended detectors, in a stable order."""
    return [
        ImplicitColumnsDetector(),
        PoorMansSearchDetector(),
        RandomSelectionDetector(),
        AmbiguousGroupByDetector(),
        CartesianProductDetector(),
        RedundantDistinctDetector(),
        HavingNoAggregateDetector(),
    ]


EXTENDED_LABELS = frozenset(
    detector.label for detector in extended_detectors()
)
