"""Detector protocol and registry — the extension point of Section 5.4.

Adding a new antipattern to the framework is exactly the paper's recipe:

1. write its formal definition,
2. implement a :class:`Detector` whose :meth:`~Detector.detect` encodes
   the detection rule,
3. if a cleaning solution exists, register a rewrite in
   :mod:`repro.rewrite.solver` under the same label,
4. append the detector via :func:`default_detectors` or pass a custom
   list to the pipeline.

The SNC detector (:mod:`repro.antipatterns.snc`) is the worked example,
matching Definition 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from ..patterns.models import Block
from .types import AntipatternInstance


@dataclass(frozen=True)
class DetectionContext:
    """Schema knowledge and tuning shared by all detectors.

    :param key_columns: lower-cased names of key attributes (Definition
        11's third axiom).  ``None`` waives the key check — the paper
        notes this simplification admits false positives; benchmark E15
        measures it.
    :param min_run_length: minimal number of queries in a Stifle run.
    :param cth_max_followups: cap on follow-up queries bound to one CTH
        first query (guards against unbounded candidate growth).
    """

    key_columns: Optional[frozenset] = None
    min_run_length: int = 2
    cth_max_followups: int = 10_000

    @classmethod
    def from_catalog(cls, catalog, **kwargs) -> "DetectionContext":
        """Build a context from an engine catalog (its key columns)."""
        return cls(key_columns=frozenset(catalog.key_column_names()), **kwargs)


class Detector(Protocol):
    """One antipattern detection rule."""

    #: label attached to instances (and to the pattern registry).
    label: str

    def detect(
        self, blocks: Sequence[Block], context: DetectionContext
    ) -> List[AntipatternInstance]:
        """Scan the blocks and return all instances found."""
        ...


def default_detectors() -> List[Detector]:
    """The paper's detector set: three Stifle classes, CTH, SNC."""
    from .cth import CthDetector
    from .snc import SncDetector
    from .stifle import StifleDetector

    return [StifleDetector(), CthDetector(), SncDetector()]


def run_detectors(
    blocks: Sequence[Block],
    context: DetectionContext = DetectionContext(),
    detectors: Optional[Sequence[Detector]] = None,
) -> List[AntipatternInstance]:
    """Run every detector and return all instances, log-ordered.

    The ordering (by first query's log position) is what the solver
    consumes — Section 5.5 solves the antipattern appearing first.
    """
    if detectors is None:
        detectors = default_detectors()
    instances: List[AntipatternInstance] = []
    for detector in detectors:
        instances.extend(detector.detect(blocks, context))
    instances.sort(key=lambda inst: (inst.start_seq, inst.label))
    return instances
