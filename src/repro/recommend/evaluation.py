"""Evaluating recommenders trained on raw vs cleaned logs.

Implements the measurement the paper's future work calls for (Section 7):

* **hit rate @ k** — how often the actually-issued next query is among
  the top-k suggestions (standard next-item metric, evaluated on a
  held-out fraction of the blocks);
* **antipattern recommendation rate** — the fraction of suggestions whose
  template belongs to a detected antipattern: *"queries suggested by a
  recommender system must not contain antipatterns"*;
* **SWS recommendation rate** — the fraction of suggestions whose
  template is a flagged machine-download (sliding-window) pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..patterns.models import Block
from ..pipeline.framework import PipelineResult
from .model import TemplateTransitionModel


@dataclass
class RecommenderReport:
    """Metrics of one trained recommender on one evaluation set."""

    hit_rate: float
    antipattern_rate: float
    sws_rate: float
    evaluated_pairs: int
    recommendations: int


def split_blocks(
    blocks: Sequence[Block], train_share: float = 0.8
) -> Tuple[List[Block], List[Block]]:
    """Time-ordered train/test split: the recommender learns from the
    past and is evaluated on the future, like a deployed system."""
    if not 0.0 < train_share < 1.0:
        raise ValueError(f"train_share must be in (0, 1), got {train_share}")
    ordered = sorted(
        blocks, key=lambda block: block.queries[0].timestamp if block.queries else 0.0
    )
    cut = max(1, int(len(ordered) * train_share))
    return list(ordered[:cut]), list(ordered[cut:])


def antipattern_template_ids(result: PipelineResult) -> Set[str]:
    """Template ids of all queries in detected antipattern instances."""
    return {
        query.template_id
        for instance in result.antipatterns
        for query in instance.queries
    }


def sws_template_ids(result: PipelineResult) -> Set[str]:
    """Template ids of patterns the SWS scan flagged."""
    if result.sws_report is None:
        return set()
    return {
        template_id
        for stats in result.sws_report.patterns
        for template_id in stats.unit
    }


def evaluate(
    model: TemplateTransitionModel,
    test_blocks: Sequence[Block],
    *,
    k: int = 3,
    antipattern_templates: Optional[Set[str]] = None,
    sws_templates: Optional[Set[str]] = None,
) -> RecommenderReport:
    """Replay the test blocks and score the model's suggestions."""
    antipattern_templates = antipattern_templates or set()
    sws_templates = sws_templates or set()
    hits = 0
    pairs = 0
    flagged = 0
    sws_flagged = 0
    total_recommendations = 0
    for block in test_blocks:
        ids = block.template_ids()
        for index in range(1, len(ids)):
            previous, actual = ids[index - 1], ids[index]
            suggestions = model.recommend(previous, k)
            if not suggestions:
                continue
            pairs += 1
            suggested_ids = [s.template_id for s in suggestions]
            if actual in suggested_ids:
                hits += 1
            total_recommendations += len(suggested_ids)
            flagged += sum(1 for t in suggested_ids if t in antipattern_templates)
            sws_flagged += sum(1 for t in suggested_ids if t in sws_templates)
    return RecommenderReport(
        hit_rate=hits / pairs if pairs else 0.0,
        antipattern_rate=(
            flagged / total_recommendations if total_recommendations else 0.0
        ),
        sws_rate=(
            sws_flagged / total_recommendations if total_recommendations else 0.0
        ),
        evaluated_pairs=pairs,
        recommendations=total_recommendations,
    )


def compare_raw_vs_clean(
    raw_result: PipelineResult,
    clean_result: PipelineResult,
    *,
    k: int = 3,
    train_share: float = 0.8,
) -> Dict[str, RecommenderReport]:
    """The future-work experiment in one call.

    Trains one recommender on the raw log's blocks and one on the clean
    log's, evaluates **both on the raw log's held-out future** (the
    queries users actually issued), and tags suggestions using the raw
    run's antipattern/SWS classification.
    """
    raw_train, raw_test = split_blocks(raw_result.mining.blocks, train_share)
    clean_train, _ = split_blocks(clean_result.mining.blocks, train_share)

    antipatterns = antipattern_template_ids(raw_result)
    sws = sws_template_ids(raw_result)

    raw_model = TemplateTransitionModel().train_on_blocks(raw_train)
    clean_model = TemplateTransitionModel().train_on_blocks(clean_train)

    return {
        "raw": evaluate(
            raw_model,
            raw_test,
            k=k,
            antipattern_templates=antipatterns,
            sws_templates=sws,
        ),
        "clean": evaluate(
            clean_model,
            raw_test,
            k=k,
            antipattern_templates=antipatterns,
            sws_templates=sws,
        ),
    }
