"""Query recommendation — the paper's future work (Section 7), built."""

from .evaluation import (
    RecommenderReport,
    antipattern_template_ids,
    compare_raw_vs_clean,
    evaluate,
    split_blocks,
    sws_template_ids,
)
from .model import Recommendation, TemplateTransitionModel

__all__ = [
    "RecommenderReport",
    "antipattern_template_ids",
    "compare_raw_vs_clean",
    "evaluate",
    "split_blocks",
    "sws_template_ids",
    "Recommendation",
    "TemplateTransitionModel",
]
