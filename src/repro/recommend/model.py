"""Next-query recommendation over template sequences.

The paper's future-work section (Section 7) hypothesises that (1) SWS
queries in the training set make recommenders suggest robot-style
machine-download queries, and (2) a recommender trained on the original
log recommends queries containing antipatterns, while one trained on the
cleaned log does not.  This module provides the recommender needed to
test both claims — a first-order Markov model over *query templates*
(the level at which SkyServer recommenders like QueRIE [6] operate).

Training consumes block-local template sequences (same user, small gaps —
the same notion of adjacency the pattern miner uses), so a recommendation
"after template A, users issue template B" reflects actual session
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..patterns.models import Block


@dataclass(frozen=True)
class Recommendation:
    """One ranked suggestion."""

    template_id: str
    score: float
    skeleton_sql: str = ""


class TemplateTransitionModel:
    """First-order Markov model over template ids.

    :param smoothing: Laplace pseudo-count added to every observed
        successor (unseen successors are never invented; smoothing only
        dampens rank gaps).
    """

    def __init__(self, smoothing: float = 0.0) -> None:
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing}")
        self.smoothing = smoothing
        self._transitions: Dict[str, Dict[str, int]] = {}
        self._unigrams: Dict[str, int] = {}
        self._skeletons: Dict[str, str] = {}
        self._total = 0

    # ------------------------------------------------------------------
    # Training

    def observe(self, previous: str, current: str) -> None:
        """Count one adjacent pair."""
        bucket = self._transitions.setdefault(previous, {})
        bucket[current] = bucket.get(current, 0) + 1

    def train_on_blocks(self, blocks: Iterable[Block]) -> "TemplateTransitionModel":
        """Train from miner blocks (chainable)."""
        for block in blocks:
            previous: Optional[str] = None
            for query in block.queries:
                template_id = query.template_id
                self._unigrams[template_id] = self._unigrams.get(template_id, 0) + 1
                self._total += 1
                self._skeletons.setdefault(
                    template_id, query.template.skeleton_sql
                )
                if previous is not None:
                    self.observe(previous, template_id)
                previous = template_id
        return self

    # ------------------------------------------------------------------
    # Inspection

    @property
    def vocabulary_size(self) -> int:
        return len(self._unigrams)

    @property
    def transition_count(self) -> int:
        return sum(
            count
            for bucket in self._transitions.values()
            for count in bucket.values()
        )

    def skeleton_of(self, template_id: str) -> str:
        return self._skeletons.get(template_id, "")

    # ------------------------------------------------------------------
    # Recommendation

    def recommend(self, previous: str, k: int = 5) -> List[Recommendation]:
        """Top-``k`` successors of ``previous``, most probable first.

        Falls back to the global unigram ranking when the context was
        never seen in training (cold start).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        bucket = self._transitions.get(previous)
        if bucket:
            total = sum(bucket.values()) + self.smoothing * len(bucket)
            ranked = sorted(bucket.items(), key=lambda kv: (-kv[1], kv[0]))
            return [
                Recommendation(
                    template_id=template_id,
                    score=(count + self.smoothing) / total,
                    skeleton_sql=self.skeleton_of(template_id),
                )
                for template_id, count in ranked[:k]
            ]
        if not self._unigrams:
            return []
        ranked = sorted(self._unigrams.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            Recommendation(
                template_id=template_id,
                score=count / self._total,
                skeleton_sql=self.skeleton_of(template_id),
            )
            for template_id, count in ranked[:k]
        ]
