"""Query-log substrate: data model, IO, duplicate removal, sessions."""

from .models import LogRecord, QueryLog
from .dedup import DedupResult, delete_duplicates, threshold_sweep, normalize_statement_text
from .io import read_csv, read_jsonl, write_csv, write_jsonl
from .session import assume_single_user, derive_users_from_ip, sessionize_by_gap

__all__ = [
    "LogRecord",
    "QueryLog",
    "DedupResult",
    "delete_duplicates",
    "threshold_sweep",
    "normalize_statement_text",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
    "assume_single_user",
    "derive_users_from_ip",
    "sessionize_by_gap",
]
