"""Adapter for the real SkyServer SQL-log export format.

The SDSS SkyServer publishes its SQL traffic (the log the paper analysed)
as CSV with, among others, the columns documented at
``skyserver.sdss.org/log/en/traffic/sql.asp``:

    yy, mm, dd, hh, mi, ss, seq, theTime, logID, clientIP, requestor,
    server, dbname, access, elapsed, busy, rows, statement, error,
    errorMessage

This reader maps such an export onto :class:`~repro.log.models.QueryLog`
so the cleaning framework runs on the genuine log unchanged:

* timestamp — from ``theTime`` (several datetime spellings accepted) or,
  if absent, assembled from the ``yy``-``ss`` parts;
* user — ``requestor`` when present, else ``clientIP`` (the SkyServer
  studies' notion of a user);
* ip — ``clientIP``; rows — ``rows``.

Column matching is case-insensitive and tolerant of extra columns, since
different SkyServer exports include different subsets.
"""

from __future__ import annotations

import csv
import datetime
from pathlib import Path
from typing import Dict, List, Optional, Union

from .models import LogRecord, QueryLog

PathLike = Union[str, Path]

#: Accepted datetime spellings for the ``theTime`` column.
_TIME_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M:%S.%f",
    "%m/%d/%Y %I:%M:%S %p",
    "%m/%d/%Y %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
)


class SkyServerFormatError(ValueError):
    """The file does not look like a SkyServer SQL-log export."""


def _parse_the_time(value: str) -> Optional[float]:
    for fmt in _TIME_FORMATS:
        try:
            parsed = datetime.datetime.strptime(value.strip(), fmt)
        except ValueError:
            continue
        return parsed.replace(tzinfo=datetime.timezone.utc).timestamp()
    return None


def _assemble_time(row: Dict[str, str]) -> Optional[float]:
    try:
        year = int(row["yy"])
        if year < 100:
            year += 2000
        parsed = datetime.datetime(
            year,
            int(row["mm"]),
            int(row["dd"]),
            int(row.get("hh", "0") or 0),
            int(row.get("mi", "0") or 0),
            int(float(row.get("ss", "0") or 0)),
        )
    except (KeyError, ValueError):
        return None
    return parsed.replace(tzinfo=datetime.timezone.utc).timestamp()


def read_skyserver_csv(path: PathLike) -> QueryLog:
    """Read a SkyServer SQL-log CSV export into a :class:`QueryLog`.

    :raises SkyServerFormatError: when no statement column or no usable
        time information is present.
    """
    records: List[LogRecord] = []
    with open(path, newline="", encoding="utf-8", errors="replace") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise SkyServerFormatError(f"{path}: empty file")
        fields = {name.lower().strip(): name for name in reader.fieldnames}
        statement_key = fields.get("statement") or fields.get("sql")
        if statement_key is None:
            raise SkyServerFormatError(
                f"{path}: no 'statement' column (found {sorted(fields)})"
            )

        for index, raw_row in enumerate(reader):
            row = {
                name.lower().strip(): (value or "")
                for name, value in raw_row.items()
                if name is not None
            }
            sql = row.get(statement_key.lower().strip(), "").strip()
            if not sql:
                continue

            timestamp: Optional[float] = None
            if row.get("thetime"):
                timestamp = _parse_the_time(row["thetime"])
            if timestamp is None:
                timestamp = _assemble_time(row)
            if timestamp is None:
                raise SkyServerFormatError(
                    f"{path}: row {index + 2}: no usable time "
                    "(need 'theTime' or yy/mm/dd[/hh/mi/ss])"
                )

            ip = row.get("clientip") or None
            user = row.get("requestor") or ip
            rows_value: Optional[int] = None
            if row.get("rows"):
                try:
                    rows_value = int(float(row["rows"]))
                except ValueError:
                    rows_value = None
            session = row.get("logid") or None

            seq = index
            if row.get("seq"):
                try:
                    seq = int(row["seq"])
                except ValueError:
                    seq = index
            records.append(
                LogRecord(
                    seq=seq,
                    sql=sql,
                    timestamp=timestamp,
                    user=user,
                    ip=ip,
                    session=session,
                    rows=rows_value,
                )
            )
    return QueryLog(records)
