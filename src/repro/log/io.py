"""Reading and writing query logs (CSV and JSON-lines).

The CSV layout mirrors the SkyServer SQL-log export the paper points to
(statement, timestamp, IP, session label, row count); JSONL is offered for
lossless round-trips of synthetic logs with ground truth kept elsewhere.

Both readers take an ``errors`` policy (:data:`repro.errors
.ERROR_POLICIES`): ``"strict"`` raises on the first malformed row (the
historical behaviour), ``"lenient"`` skips it, and ``"quarantine"``
skips it *and* records the raw line in the caller-supplied
:class:`~repro.errors.QuarantineChannel` — real log exports are full of
truncated lines, and dying on line 31 of 42 million is not an option.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Union

from ..errors import (
    UNREADABLE_RECORD,
    QuarantineChannel,
    validate_error_policy,
)
from .models import LogRecord, QueryLog

PathLike = Union[str, Path]

CSV_FIELDS = ("seq", "timestamp", "user", "ip", "session", "rows", "sql")


def write_csv(log: QueryLog, path: PathLike) -> None:
    """Write ``log`` to ``path`` as a UTF-8 CSV with header."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for record in log:
            writer.writerow(
                [
                    record.seq,
                    repr(record.timestamp),
                    record.user or "",
                    record.ip or "",
                    record.session or "",
                    "" if record.rows is None else record.rows,
                    record.sql,
                ]
            )


def read_csv(
    path: PathLike,
    *,
    errors: str = "strict",
    channel: Optional[QuarantineChannel] = None,
) -> QueryLog:
    """Read a CSV written by :func:`write_csv` (or hand-made with the same
    header).  Empty metadata cells become ``None``.

    :param errors: malformed-row policy (``strict`` raises, ``lenient``
        skips, ``quarantine`` skips and records into ``channel``).
    :param channel: quarantine channel for rejected rows; only consulted
        under the ``quarantine`` policy.
    """
    validate_error_policy(errors)
    records = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(
                f"log CSV {path} is missing columns: {sorted(missing)}"
            )
        for row in reader:
            try:
                records.append(
                    LogRecord(
                        seq=int(row["seq"]),
                        sql=row["sql"],
                        timestamp=float(row["timestamp"]),
                        user=row["user"] or None,
                        ip=row["ip"] or None,
                        session=row["session"] or None,
                        rows=int(row["rows"]) if row["rows"] else None,
                    )
                )
            except (TypeError, ValueError, KeyError) as exc:
                if errors == "strict":
                    raise ValueError(
                        f"{path}:{reader.line_num}: malformed row: {exc}"
                    ) from exc
                if errors == "quarantine" and channel is not None:
                    channel.add_raw(
                        str(row),
                        UNREADABLE_RECORD,
                        "io",
                        detail=f"{path}:{reader.line_num}: {exc}",
                    )
    return QueryLog(records)


def write_jsonl(log: QueryLog, path: PathLike) -> None:
    """Write ``log`` as one JSON object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in log:
            handle.write(
                json.dumps(
                    {
                        "seq": record.seq,
                        "timestamp": record.timestamp,
                        "user": record.user,
                        "ip": record.ip,
                        "session": record.session,
                        "rows": record.rows,
                        "sql": record.sql,
                    },
                    ensure_ascii=False,
                )
            )
            handle.write("\n")


def read_jsonl(
    path: PathLike,
    *,
    errors: str = "strict",
    channel: Optional[QuarantineChannel] = None,
) -> QueryLog:
    """Read a JSONL log written by :func:`write_jsonl`.

    ``errors`` / ``channel`` behave as in :func:`read_csv`.
    """
    validate_error_policy(errors)
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                records.append(
                    LogRecord(
                        seq=int(data["seq"]),
                        sql=data["sql"],
                        timestamp=float(data["timestamp"]),
                        user=data.get("user"),
                        ip=data.get("ip"),
                        session=data.get("session"),
                        rows=data.get("rows"),
                    )
                )
            except (
                json.JSONDecodeError,
                TypeError,
                ValueError,
                KeyError,
            ) as exc:
                if errors == "strict":
                    kind = (
                        "invalid JSON"
                        if isinstance(exc, json.JSONDecodeError)
                        else "malformed line"
                    )
                    raise ValueError(
                        f"{path}:{line_number}: {kind}: {exc}"
                    ) from exc
                if errors == "quarantine" and channel is not None:
                    channel.add_raw(
                        line,
                        UNREADABLE_RECORD,
                        "io",
                        detail=f"{path}:{line_number}: {exc}",
                    )
    return QueryLog(records)
