"""Reading and writing query logs (CSV and JSON-lines).

The CSV layout mirrors the SkyServer SQL-log export the paper points to
(statement, timestamp, IP, session label, row count); JSONL is offered for
lossless round-trips of synthetic logs with ground truth kept elsewhere.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Union

from .models import LogRecord, QueryLog

PathLike = Union[str, Path]

CSV_FIELDS = ("seq", "timestamp", "user", "ip", "session", "rows", "sql")


def write_csv(log: QueryLog, path: PathLike) -> None:
    """Write ``log`` to ``path`` as a UTF-8 CSV with header."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for record in log:
            writer.writerow(
                [
                    record.seq,
                    repr(record.timestamp),
                    record.user or "",
                    record.ip or "",
                    record.session or "",
                    "" if record.rows is None else record.rows,
                    record.sql,
                ]
            )


def read_csv(path: PathLike) -> QueryLog:
    """Read a CSV written by :func:`write_csv` (or hand-made with the same
    header).  Empty metadata cells become ``None``."""
    records = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(
                f"log CSV {path} is missing columns: {sorted(missing)}"
            )
        for row in reader:
            records.append(
                LogRecord(
                    seq=int(row["seq"]),
                    sql=row["sql"],
                    timestamp=float(row["timestamp"]),
                    user=row["user"] or None,
                    ip=row["ip"] or None,
                    session=row["session"] or None,
                    rows=int(row["rows"]) if row["rows"] else None,
                )
            )
    return QueryLog(records)


def write_jsonl(log: QueryLog, path: PathLike) -> None:
    """Write ``log`` as one JSON object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in log:
            handle.write(
                json.dumps(
                    {
                        "seq": record.seq,
                        "timestamp": record.timestamp,
                        "user": record.user,
                        "ip": record.ip,
                        "session": record.session,
                        "rows": record.rows,
                        "sql": record.sql,
                    },
                    ensure_ascii=False,
                )
            )
            handle.write("\n")


def read_jsonl(path: PathLike) -> QueryLog:
    """Read a JSONL log written by :func:`write_jsonl`."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            records.append(
                LogRecord(
                    seq=int(data["seq"]),
                    sql=data["sql"],
                    timestamp=float(data["timestamp"]),
                    user=data.get("user"),
                    ip=data.get("ip"),
                    session=data.get("session"),
                    rows=data.get("rows"),
                )
            )
    return QueryLog(records)
