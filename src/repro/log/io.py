"""Reading and writing query logs (CSV and JSON-lines).

The CSV layout mirrors the SkyServer SQL-log export the paper points to
(statement, timestamp, IP, session label, row count); JSONL is offered for
lossless round-trips of synthetic logs with ground truth kept elsewhere.

Since the :mod:`repro.store` input API landed, the one entry point for
*reading* any log file is :func:`repro.open_log` — it sniffs the format,
returns a streaming :class:`~repro.store.LogSource` and leaves
materialisation (``.read()``) to the caller.  The historical
:func:`read_csv` / :func:`read_jsonl` helpers are deprecated shims over
it (warn once, behaviour kept).

Writers take an ``errors``-free path: they create missing parent
directories and write **atomically** (a temp file in the target directory
followed by ``os.replace``), so a crash mid-write can never leave a
truncated log behind — the same contract as the observability layer's
``JsonlSink`` and the checkpoint store.

Both readers take an ``errors`` policy (:data:`repro.errors
.ERROR_POLICIES`): ``"strict"`` raises on the first malformed row (the
historical behaviour), ``"lenient"`` skips it, and ``"quarantine"``
skips it *and* records the raw line in the caller-supplied
:class:`~repro.errors.QuarantineChannel` — real log exports are full of
truncated lines, and dying on line 31 of 42 million is not an option.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import IO, Callable, Dict, Iterable, Iterator, Optional, Union

from ..errors import (
    UNREADABLE_RECORD,
    QuarantineChannel,
    validate_error_policy,
)
from .models import LogRecord, QueryLog

PathLike = Union[str, Path]

CSV_FIELDS = ("seq", "timestamp", "user", "ip", "session", "rows", "sql")


# ----------------------------------------------------------------------
# Record codecs — one canonical dict shape, shared by JSONL files, the
# checkpoint spill format and the columnar store's metadata columns.


def record_as_dict(record: LogRecord) -> Dict[str, object]:
    """The canonical JSON-ready rendering of one record (lossless)."""
    return {
        "seq": record.seq,
        "timestamp": record.timestamp,
        "user": record.user,
        "ip": record.ip,
        "session": record.session,
        "rows": record.rows,
        "sql": record.sql,
    }


def record_from_dict(data: Dict[str, object]) -> LogRecord:
    """Inverse of :func:`record_as_dict` (raises on malformed input)."""
    return LogRecord(
        seq=int(data["seq"]),  # type: ignore[arg-type]
        sql=data["sql"],  # type: ignore[arg-type]
        timestamp=float(data["timestamp"]),  # type: ignore[arg-type]
        user=data.get("user"),  # type: ignore[arg-type]
        ip=data.get("ip"),  # type: ignore[arg-type]
        session=data.get("session"),  # type: ignore[arg-type]
        rows=data.get("rows"),  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# Atomic file writing


def atomic_text_writer(path: PathLike, newline: Optional[str] = None):
    """Context manager: a UTF-8 text handle that lands on ``path`` only
    if the ``with`` block completes.

    The temp file lives in the target directory (so ``os.replace`` is an
    atomic same-filesystem rename); missing parent directories are
    created.  On an exception the temp file is removed and the previous
    file content — if any — survives untouched.
    """
    return _AtomicTextFile(Path(path), newline)


class _AtomicTextFile:
    def __init__(self, path: Path, newline: Optional[str]) -> None:
        self._path = path
        self._newline = newline
        self._handle: Optional[IO[str]] = None
        self._tmp_name: Optional[str] = None

    def __enter__(self) -> IO[str]:
        self._path.parent.mkdir(parents=True, exist_ok=True)
        fd, self._tmp_name = tempfile.mkstemp(
            dir=str(self._path.parent), prefix=self._path.name + ".", suffix=".tmp"
        )
        self._handle = os.fdopen(
            fd, "w", encoding="utf-8", newline=self._newline
        )
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._handle is not None and self._tmp_name is not None
        self._handle.close()
        if exc_type is None:
            os.replace(self._tmp_name, self._path)
        else:
            try:
                os.unlink(self._tmp_name)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def write_csv(log: Iterable[LogRecord], path: PathLike) -> None:
    """Write ``log`` to ``path`` as a UTF-8 CSV with header.

    Accepts any iterable of records (a :class:`QueryLog`, a list, a
    generator); missing parent directories are created and the file is
    written atomically.
    """
    with atomic_text_writer(path, newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for record in log:
            writer.writerow(
                [
                    record.seq,
                    repr(record.timestamp),
                    record.user or "",
                    record.ip or "",
                    record.session or "",
                    "" if record.rows is None else record.rows,
                    record.sql,
                ]
            )


def write_jsonl(log: Iterable[LogRecord], path: PathLike) -> None:
    """Write ``log`` as one JSON object per line (atomically, creating
    missing parent directories)."""
    with atomic_text_writer(path) as handle:
        for record in log:
            handle.write(json.dumps(record_as_dict(record), ensure_ascii=False))
            handle.write("\n")


# ----------------------------------------------------------------------
# Streaming row readers — the kernels behind CsvSource / JsonlSource.


def iter_csv_records(
    path: PathLike,
    *,
    errors: str = "strict",
    channel: Optional[QuarantineChannel] = None,
) -> Iterator[LogRecord]:
    """Yield the records of a CSV log one by one (file order).

    Raises immediately on a missing header column; malformed rows follow
    the ``errors`` policy exactly like the historical ``read_csv``.
    """
    validate_error_policy(errors)
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(
                f"log CSV {path} is missing columns: {sorted(missing)}"
            )
        for row in reader:
            try:
                record = LogRecord(
                    seq=int(row["seq"]),
                    sql=row["sql"],
                    timestamp=float(row["timestamp"]),
                    user=row["user"] or None,
                    ip=row["ip"] or None,
                    session=row["session"] or None,
                    rows=int(row["rows"]) if row["rows"] else None,
                )
            except (TypeError, ValueError, KeyError) as exc:
                if errors == "strict":
                    raise ValueError(
                        f"{path}:{reader.line_num}: malformed row: {exc}"
                    ) from exc
                if errors == "quarantine" and channel is not None:
                    channel.add_raw(
                        str(row),
                        UNREADABLE_RECORD,
                        "io",
                        detail=f"{path}:{reader.line_num}: {exc}",
                    )
                continue
            yield record


def iter_jsonl_records(
    path: PathLike,
    *,
    errors: str = "strict",
    channel: Optional[QuarantineChannel] = None,
) -> Iterator[LogRecord]:
    """Yield the records of a JSONL log one by one (file order).

    ``errors`` / ``channel`` behave as in :func:`iter_csv_records`.
    """
    validate_error_policy(errors)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = record_from_dict(json.loads(line))
            except (
                json.JSONDecodeError,
                TypeError,
                ValueError,
                KeyError,
            ) as exc:
                if errors == "strict":
                    kind = (
                        "invalid JSON"
                        if isinstance(exc, json.JSONDecodeError)
                        else "malformed line"
                    )
                    raise ValueError(
                        f"{path}:{line_number}: {kind}: {exc}"
                    ) from exc
                if errors == "quarantine" and channel is not None:
                    channel.add_raw(
                        line,
                        UNREADABLE_RECORD,
                        "io",
                        detail=f"{path}:{line_number}: {exc}",
                    )
                continue
            yield record


# ----------------------------------------------------------------------
# Deprecated one-call readers


def _forwarded_read(
    path: PathLike,
    fmt: str,
    errors: str,
    channel: Optional[QuarantineChannel],
    shim: str,
) -> QueryLog:
    warnings.warn(
        f"{shim}() is deprecated; use repro.open_log(path).read() "
        "(or pass the path straight to repro.clean)",
        DeprecationWarning,
        stacklevel=3,
    )
    from ..store.sources import open_log

    with open_log(path, format=fmt, errors=errors, channel=channel) as source:
        return source.read()


def read_csv(
    path: PathLike,
    *,
    errors: str = "strict",
    channel: Optional[QuarantineChannel] = None,
) -> QueryLog:
    """Deprecated one-call CSV reader — use :func:`repro.open_log`.

    .. deprecated:: 1.6
        ``repro.open_log(path, format="csv").read()`` returns the same
        :class:`QueryLog` and also offers chunked, bounded-memory
        iteration via ``open_chunks()``.
    """
    return _forwarded_read(path, "csv", errors, channel, "read_csv")


def read_jsonl(
    path: PathLike,
    *,
    errors: str = "strict",
    channel: Optional[QuarantineChannel] = None,
) -> QueryLog:
    """Deprecated one-call JSONL reader — use :func:`repro.open_log`.

    .. deprecated:: 1.6
        ``repro.open_log(path, format="jsonl").read()`` returns the same
        :class:`QueryLog` and also offers chunked, bounded-memory
        iteration via ``open_chunks()``.
    """
    return _forwarded_read(path, "jsonl", errors, channel, "read_jsonl")
