"""User/session handling, including the reduced-information fallback.

Section 4.1.1: *if the log does not contain information on the users, we
assume that one user has issued all queries*.  Section 6.8 studies exactly
that degraded input and finds pattern frequencies barely change, because
queries of one pattern instance arrive within a very small time window
anyway.

This module provides

* :func:`assume_single_user` — the paper's fallback, materialised;
* :func:`sessionize_by_gap` — an optional heuristic that splits an
  anonymous log into pseudo-sessions at large time gaps, useful when one
  wants *some* grouping without user data;
* :func:`derive_users_from_ip` — SkyServer-style identity (user ≈ IP).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .models import LogRecord, QueryLog


def assume_single_user(log: QueryLog, label: str = "<anonymous>") -> QueryLog:
    """Return a copy of ``log`` with every record's user set to ``label``."""
    return QueryLog(replace(record, user=label) for record in log)


def derive_users_from_ip(log: QueryLog) -> QueryLog:
    """Set each record's user to its IP (the SkyServer log's notion of a
    user when no login exists).  Records without an IP stay anonymous."""
    return QueryLog(
        replace(record, user=record.ip) if record.ip else record
        for record in log
    )


def sessionize_by_gap(
    log: QueryLog, gap_seconds: float = 1800.0, prefix: str = "s"
) -> QueryLog:
    """Split an (anonymous) log into pseudo-sessions at time gaps.

    Consecutive records less than ``gap_seconds`` apart share a session
    label; a larger gap starts a new one.  When records carry users, gaps
    are tracked per user.

    :raises ValueError: if ``gap_seconds`` is not positive.
    """
    if gap_seconds <= 0:
        raise ValueError(f"gap_seconds must be > 0, got {gap_seconds}")
    last_time: dict = {}
    counters: dict = {}
    records = []
    for record in log:
        key = record.user_key()
        previous = last_time.get(key)
        if previous is None or record.timestamp - previous >= gap_seconds:
            counters[key] = counters.get(key, 0) + 1
        last_time[key] = record.timestamp
        label = f"{prefix}{counters[key]}:{key}"
        records.append(replace(record, session=label))
    return QueryLog(records)
