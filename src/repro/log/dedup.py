"""Duplicate deletion — the first processing step of the pipeline (Fig. 1).

Section 5.2: *duplicates are identical statements with a small difference
in time*, perceived as unintended errors (web-form reloads, application
retries).  Two identical statements from the same user stand for the same
information need when their time difference is below a threshold; the case
study (Table 4) finds one second catches almost all of them.

The removal keeps the *first* submission of a run of duplicates and counts
removals in :class:`DedupResult`, because a large number of removals may
itself indicate an application worth refactoring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple, Union

from .models import LogRecord, QueryLog, record_order_key


def _in_log_order(
    log: Union[QueryLog, Iterable[LogRecord]]
) -> Iterable[LogRecord]:
    """``log`` in (timestamp, seq) order, sorting only when necessary.

    A :class:`QueryLog` is sorted by construction and is returned as-is
    (no copy).  Other iterables get a single-pass sortedness check over
    :func:`~repro.log.models.record_order_key` — one key computation per
    record, against the n·log(n) key *comparisons* plus full copy of an
    unconditional ``sorted()`` — and are sorted (into a new list; the
    caller's sequence is never mutated) only if actually out of order.
    """
    if isinstance(log, QueryLog):
        return log
    records = log if isinstance(log, (list, tuple)) else list(log)
    previous = None
    for record in records:
        key = record_order_key(record)
        if previous is not None and key < previous:
            return sorted(records, key=record_order_key)
        previous = key
    return records


def normalize_statement_text(sql: str) -> str:
    """Light textual normalisation used for duplicate *identity*.

    Identity is deliberately textual (not skeleton-based): a reload sends
    byte-identical SQL.  We only collapse whitespace so that logs that
    re-wrap long statements do not hide duplicates.
    """
    return " ".join(sql.split())


@dataclass(frozen=True)
class DedupResult:
    """Outcome of one duplicate-removal pass.

    :param log: the pre-clean query log (duplicates removed).
    :param removed: how many records were dropped.
    :param threshold: the time threshold (seconds) that was applied;
        ``math.inf`` means unrestricted.
    """

    log: QueryLog
    removed: int
    threshold: float

    @property
    def kept(self) -> int:
        return len(self.log)


def delete_duplicates(
    log: Union[QueryLog, Iterable[LogRecord]], threshold: float = 1.0
) -> DedupResult:
    """Remove duplicate statements from ``log``.

    A record is a duplicate iff an identical statement (after whitespace
    normalisation) from the same user occurred at most ``threshold``
    seconds before it.  Each *kept* occurrence restarts the clock, so a
    slow steady stream of reloads spaced below the threshold collapses to
    the first one only when each reload lands within ``threshold`` of the
    previously *seen* one — matching the paper's "small difference in
    time" reading and keeping the pass O(n).

    The single-pass rule assumes per-user timestamps are non-decreasing;
    an out-of-order input (clock skew, raw merged shards passed as a
    plain list) would silently under-remove.  Out-of-order records are
    therefore stable-sorted into (timestamp, seq) order first — but only
    when actually needed: a :class:`QueryLog` is sorted by construction,
    and any other input gets a single sortedness pass before paying for
    ``sorted()``'s O(n log n) comparison work plus full copy (see
    :func:`_in_log_order`).

    :param threshold: seconds; use ``math.inf`` for the unrestricted
        variant of Table 4.
    :raises ValueError: if threshold is negative.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")

    last_seen: Dict[Tuple[str, str], float] = {}
    kept = []
    removed = 0
    for record in _in_log_order(log):
        key = (record.user_key(), normalize_statement_text(record.sql))
        previous = last_seen.get(key)
        if previous is not None and record.timestamp - previous <= threshold:
            removed += 1
            # The clock still moves: a long run of sub-threshold reloads
            # is one information need, however long the run is.
            last_seen[key] = record.timestamp
            continue
        last_seen[key] = record.timestamp
        kept.append(record)
    return DedupResult(log=QueryLog(kept), removed=removed, threshold=threshold)


def threshold_sweep(log: QueryLog, thresholds=(1.0, 2.0, 5.0, 10.0, math.inf)):
    """Reproduce Table 4: log size after dedup for several thresholds.

    Returns a list of ``(threshold, kept, percent_of_original)`` rows,
    prefixed with the original size row.
    """
    rows = [("original", len(log), 100.0)]
    original = len(log) or 1
    for threshold in thresholds:
        result = delete_duplicates(log, threshold)
        label = "non restricted" if math.isinf(threshold) else f"{threshold:g} sec"
        rows.append((label, result.kept, 100.0 * result.kept / original))
    return rows
