"""Query-log data model.

A :class:`QueryLog` is an ordered collection of :class:`LogRecord` — one
record per submitted statement.  The model mirrors the SkyServer SQL log
(see Section 6.1 of the paper): besides the statement and its timestamp it
optionally carries the user IP, a session label and the number of result
rows.  Only statement + timestamp are required (Section 6.8 shows the
framework works with that minimal input).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class LogRecord:
    """One log line.

    :param seq: position of the record in the original log (0-based).  It
        is the tiebreaker that keeps ordering stable for equal timestamps —
        patterns are *sequences*, so order matters (Section 6.8).
    :param sql: the statement text as submitted.
    :param timestamp: submission time, seconds since the epoch.
    :param user: user identity if the log has one (SkyServer: derived from
        IP + session).  ``None`` means unknown.
    :param ip: client IP, if logged.
    :param session: session label, if logged.
    :param rows: number of result rows reported by the server, if logged.
    """

    seq: int
    sql: str
    timestamp: float
    user: Optional[str] = None
    ip: Optional[str] = None
    session: Optional[str] = None
    rows: Optional[int] = None

    def user_key(self) -> str:
        """Grouping key for "same user" axioms.

        When the log carries no user information the paper assumes one
        user issued all queries (Section 4.1.1); we encode that as the
        single key ``"<anonymous>"``.
        """
        return self.user if self.user is not None else "<anonymous>"

    def with_sql(self, sql: str) -> "LogRecord":
        """Copy of this record with the statement text replaced (used by
        the rewriter when an antipattern instance is solved in place)."""
        return replace(self, sql=sql)


def record_order_key(record: LogRecord) -> Tuple[int, float, int]:
    """The canonical (timestamp, seq) sort key, made NaN-safe.

    ``sorted`` with raw NaN timestamps silently mis-orders *neighbouring
    valid records* too (NaN compares false both ways, breaking Timsort's
    transitivity assumption).  Ranking NaN records after every finite
    one — deterministically, by seq — keeps the valid prefix perfectly
    ordered, so downstream validation can quarantine the tail without
    the garbage having scrambled the good records.
    """
    timestamp = record.timestamp
    if isinstance(timestamp, float) and math.isnan(timestamp):
        return (1, 0.0, record.seq)
    return (0, timestamp, record.seq)


class QueryLog:
    """An ordered, indexable query log.

    Records are kept in (timestamp, seq) order.  The class is deliberately
    a thin, immutable-ish container: the pipeline stages consume one log
    and produce a new one, so each intermediate artifact of Fig. 1
    (original / pre-clean / parsed / clean) is a separate ``QueryLog``.
    """

    def __init__(self, records: Iterable[LogRecord] = ()) -> None:
        self._records: List[LogRecord] = sorted(records, key=record_order_key)

    # ------------------------------------------------------------------
    # Container protocol

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> LogRecord:
        return self._records[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryLog):
            return NotImplemented
        return self._records == other._records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryLog({len(self._records)} records)"

    # ------------------------------------------------------------------
    # Constructors

    @classmethod
    def from_statements(
        cls,
        statements: Iterable[str],
        *,
        start_time: float = 0.0,
        spacing: float = 1.0,
        user: Optional[str] = None,
    ) -> "QueryLog":
        """Build a log from bare statement strings with synthetic,
        evenly spaced timestamps — convenient in tests and examples."""
        records = [
            LogRecord(
                seq=index,
                sql=sql,
                timestamp=start_time + index * spacing,
                user=user,
            )
            for index, sql in enumerate(statements)
        ]
        return cls(records)

    # ------------------------------------------------------------------
    # Views

    def records(self) -> List[LogRecord]:
        """The records as a list (a copy; the log stays unchanged)."""
        return list(self._records)

    def statements(self) -> List[str]:
        """Just the SQL texts, in log order."""
        return [record.sql for record in self._records]

    def by_user(self) -> Dict[str, List[LogRecord]]:
        """Records grouped by user key, each group in log order."""
        groups: Dict[str, List[LogRecord]] = {}
        for record in self._records:
            groups.setdefault(record.user_key(), []).append(record)
        return groups

    def distinct_users(self) -> int:
        """Number of distinct user keys in the log."""
        return len({record.user_key() for record in self._records})

    def time_span(self) -> Tuple[float, float]:
        """(first, last) timestamp; (0.0, 0.0) for an empty log."""
        if not self._records:
            return (0.0, 0.0)
        return (self._records[0].timestamp, self._records[-1].timestamp)

    # ------------------------------------------------------------------
    # Derivation

    def filter(self, keep: Callable[[LogRecord], bool]) -> "QueryLog":
        """New log with only the records satisfying ``keep``."""
        return QueryLog(record for record in self._records if keep(record))

    def map_sql(self, fn: Callable[[LogRecord], str]) -> "QueryLog":
        """New log with every statement text passed through ``fn``."""
        return QueryLog(record.with_sql(fn(record)) for record in self._records)

    def without_metadata(self) -> "QueryLog":
        """Copy of the log stripped down to statements + timestamps —
        the reduced-information input of the Fig. 2(c) experiment."""
        return QueryLog(
            LogRecord(seq=record.seq, sql=record.sql, timestamp=record.timestamp)
            for record in self._records
        )
