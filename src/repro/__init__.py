"""repro — a reproduction of *Cleaning Antipatterns in an SQL Query Log*
(Arzamasova, Schäler, Böhm; ICDE/TKDE 2018).

The package implements the paper's full stack:

* :mod:`repro.sqlparser` — SQL front end (lexer, parser, AST, formatter);
* :mod:`repro.skeleton` — skeleton queries and templates (Section 4.1.2);
* :mod:`repro.log` — query-log model, IO, duplicate removal (Section 5.2);
* :mod:`repro.patterns` — pattern mining, frequency/userPopularity, SWS;
* :mod:`repro.antipatterns` — Stifle / CTH / SNC detection (Section 4.2);
* :mod:`repro.rewrite` — solving rules + engine-backed validation;
* :mod:`repro.pipeline` — the Fig. 1 cleaning framework, end to end;
* :mod:`repro.store` — out-of-core log input: the :class:`LogSource`
  protocol, the columnar store, run checkpoints;
* :mod:`repro.obs` — pipeline observability (metrics, traces, recorders);
* :mod:`repro.engine` — in-memory relational engine + cost model;
* :mod:`repro.workload` — synthetic SkyServer log generator + ground truth;
* :mod:`repro.analysis` — downstream overlap clustering (Section 6.9).

Quick start::

    import repro

    log = repro.open_log("queries.csv").read()       # any on-disk format
    result = repro.clean(log)                        # batch, full artifacts
    print(result.clean_log.statements())

    result = repro.clean("queries.csv", execution="parallel")  # all cores
    result = repro.clean(                            # out of core + resumable
        "skyserver.columnar",
        execution="streaming",
        checkpoint_dir="run-ckpt",
    )
"""

from .errors import (
    ERROR_POLICIES,
    QuarantineChannel,
    QuarantinedRecord,
    RecordFailure,
    ShardFailure,
)
from .log.models import LogRecord, QueryLog
from .obs import (
    InMemorySink,
    JsonlSink,
    NullRecorder,
    PipelineMetrics,
    Recorder,
    StageMetrics,
)
from .pipeline.api import clean
from .pipeline.config import ExecutionConfig, PipelineConfig
from .pipeline.framework import CleaningPipeline, PipelineResult, clean_log
from .pipeline.parallel import ParallelCleaner, ParallelStats
from .pipeline.streaming import StreamingCleaner, StreamingStats
from .store import (
    CheckpointError,
    ColumnarSource,
    CsvSource,
    InMemorySource,
    JsonlSource,
    LogSource,
    RunCheckpoint,
    open_log,
    write_columnar,
)

__version__ = "1.10.0"

__all__ = [
    "LogRecord",
    "QueryLog",
    "clean",
    "ExecutionConfig",
    "PipelineConfig",
    "ERROR_POLICIES",
    "QuarantineChannel",
    "QuarantinedRecord",
    "RecordFailure",
    "ShardFailure",
    "CleaningPipeline",
    "PipelineResult",
    "ParallelCleaner",
    "ParallelStats",
    "StreamingCleaner",
    "StreamingStats",
    "Recorder",
    "NullRecorder",
    "PipelineMetrics",
    "StageMetrics",
    "InMemorySink",
    "JsonlSink",
    "open_log",
    "LogSource",
    "InMemorySource",
    "CsvSource",
    "JsonlSource",
    "ColumnarSource",
    "write_columnar",
    "RunCheckpoint",
    "CheckpointError",
    "clean_log",
    "__version__",
]
