"""Unit tests for hotspot extraction (user-interest analysis)."""

import pytest

from repro.analysis import cluster_queries
from repro.analysis.interests import (
    Hotspot,
    extract_hotspots,
    match_hotspots,
    spatial_center,
)
from repro.analysis.dataspace import extract_region
from repro.log import LogRecord, QueryLog
from repro.pipeline import parse_log


def region_of(sql):
    log = QueryLog([LogRecord(0, sql, 0.0, "u")])
    return extract_region(parse_log(log).queries[0])


def queries_for(statements):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=float(i), user="u")
        for i, sql in enumerate(statements)
    )
    return parse_log(log).queries


class TestSpatialCenter:
    def test_function_call_center(self):
        region = region_of(
            "SELECT p.objid FROM fGetNearbyObjEq(145.2, 0.3, 1.0) n, "
            "photoprimary p WHERE n.objid = p.objid"
        )
        center = spatial_center(region)
        assert center is not None
        assert center[0] == pytest.approx(145.5, abs=1.0)
        assert center[1] == pytest.approx(0.5, abs=1.0)

    def test_ra_dec_range_center(self):
        region = region_of(
            "SELECT objid FROM photoprimary WHERE ra BETWEEN 100 AND 102 "
            "AND dec BETWEEN 10 AND 12"
        )
        assert spatial_center(region) == (101.0, 11.0)

    def test_non_spatial_region_is_none(self):
        region = region_of("SELECT objid FROM photoprimary WHERE objid = 5")
        assert spatial_center(region) is None

    def test_unbounded_spatial_is_none(self):
        region = region_of("SELECT objid FROM photoprimary WHERE ra > 100")
        assert spatial_center(region) is None

    def test_ra_wraps_into_range(self):
        region = region_of(
            "SELECT objid FROM photoprimary WHERE ra BETWEEN 359 AND 365 "
            "AND dec BETWEEN 0 AND 2"
        )
        ra, _ = spatial_center(region)
        assert 0.0 <= ra < 360.0


class TestExtractHotspots:
    def _clustering(self, statements, threshold=0.5):
        return cluster_queries(queries_for(statements), threshold)

    def test_spatial_queries_become_hotspot(self):
        statements = [
            "SELECT objid FROM photoprimary WHERE ra BETWEEN 100 AND 102 "
            "AND dec BETWEEN 10 AND 12"
        ] * 5
        hotspots = extract_hotspots(self._clustering(statements))
        assert len(hotspots) == 1
        assert hotspots[0].query_count == 5

    def test_nearby_areas_merge_on_grid(self):
        statements = [
            "SELECT objid FROM photoprimary WHERE ra BETWEEN 100 AND 101 "
            "AND dec BETWEEN 10 AND 11",
            "SELECT objid FROM photoprimary WHERE ra BETWEEN 101 AND 102 "
            "AND dec BETWEEN 10 AND 11",
        ]
        hotspots = extract_hotspots(
            self._clustering(statements), grid_degrees=8.0
        )
        assert len(hotspots) == 1
        assert hotspots[0].cluster_count >= 1

    def test_distant_areas_stay_apart(self):
        statements = [
            "SELECT objid FROM photoprimary WHERE ra BETWEEN 10 AND 11 "
            "AND dec BETWEEN 0 AND 1",
            "SELECT objid FROM photoprimary WHERE ra BETWEEN 200 AND 201 "
            "AND dec BETWEEN 50 AND 51",
        ]
        hotspots = extract_hotspots(self._clustering(statements))
        assert len(hotspots) == 2

    def test_non_spatial_clusters_skipped(self):
        statements = [f"SELECT a FROM t WHERE objid = {i}" for i in range(5)]
        assert extract_hotspots(self._clustering(statements)) == []

    def test_ranked_by_query_count(self):
        statements = (
            [
                "SELECT objid FROM photoprimary WHERE ra BETWEEN 10 AND 11 "
                "AND dec BETWEEN 0 AND 1"
            ]
            * 5
            + [
                "SELECT objid FROM photoprimary WHERE ra BETWEEN 200 AND 201 "
                "AND dec BETWEEN 50 AND 51"
            ]
            * 2
        )
        hotspots = extract_hotspots(self._clustering(statements))
        assert hotspots[0].query_count >= hotspots[1].query_count

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            extract_hotspots(self._clustering([]), grid_degrees=0)


class TestMatchHotspots:
    def test_recovery(self):
        hotspots = [Hotspot(ra=145.0, dec=0.0, query_count=10)]
        match = match_hotspots(hotspots, [(146.0, 1.0), (300.0, -40.0)])
        assert match.recovered == 1
        assert match.total == 2
        assert match.recall == 0.5

    def test_ra_wraparound_matching(self):
        hotspots = [Hotspot(ra=359.5, dec=0.0, query_count=1)]
        match = match_hotspots(hotspots, [(0.5, 0.0)])
        assert match.recovered == 1

    def test_top_limits_pool(self):
        hotspots = [
            Hotspot(ra=10.0, dec=0.0, query_count=100),
            Hotspot(ra=200.0, dec=0.0, query_count=1),
        ]
        match = match_hotspots(hotspots, [(200.0, 0.0)], top=1)
        assert match.recovered == 0
