"""Unit tests for engine-backed rewrite validation."""

import pytest

from repro.antipatterns import DetectionContext, run_detectors
from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log
from repro.rewrite import solve
from repro.rewrite.validation import validate_all, validate_solved

KEYS = frozenset({"empid", "id", "objid"})


def solved_for(statements, user="u"):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=float(i) * 0.1, user=user)
        for i, sql in enumerate(statements)
    )
    stage = parse_log(log)
    instances = run_detectors(
        build_blocks(stage.queries), DetectionContext(key_columns=KEYS)
    )
    return solve(stage.parsed_log, instances).solved


class TestDwValidation:
    def test_dw_rewrite_is_equivalent(self, employees_database):
        solved = solved_for(
            [
                "SELECT name FROM Employees WHERE empId = 12",
                "SELECT name FROM Employees WHERE empId = 15",
                "SELECT name FROM Employees WHERE empId = 16",
            ]
        )
        assert len(solved) == 1
        report = validate_solved(employees_database, solved[0])
        assert report.comparable
        assert report.equivalent
        assert report.per_query_coverage == [1.0, 1.0, 1.0]

    def test_dw_with_missing_key_still_equivalent(self, employees_database):
        """A lookup of a nonexistent key returns no rows in both forms."""
        solved = solved_for(
            [
                "SELECT name FROM Employees WHERE empId = 12",
                "SELECT name FROM Employees WHERE empId = 999",
            ]
        )
        report = validate_solved(employees_database, solved[0])
        assert report.equivalent


class TestDsValidation:
    def test_ds_rewrite_is_equivalent(self, employees_database):
        solved = solved_for(
            [
                "SELECT name, surname FROM Employees WHERE empId = 12",
                "SELECT birthday, phone FROM Employees WHERE empId = 12",
            ]
        )
        assert solved[0].instance.label == "DS-Stifle"
        report = validate_solved(employees_database, solved[0])
        assert report.comparable
        assert report.equivalent


class TestSncValidation:
    def test_snc_originals_provably_empty(self, employees_database):
        solved = solved_for(["SELECT name FROM Employees WHERE phone = NULL"])
        report = validate_solved(employees_database, solved[0])
        assert report.comparable
        assert report.equivalent  # original returned 0 rows, as SQL demands

    def test_validate_all_returns_one_report_each(self, employees_database):
        solved = solved_for(
            [
                "SELECT name FROM Employees WHERE empId = 12",
                "SELECT name FROM Employees WHERE empId = 15",
                "SELECT name FROM Employees WHERE phone = NULL",
            ]
        )
        reports = validate_all(employees_database, solved)
        assert len(reports) == len(solved)
        assert all(report.equivalent for report in reports)


class TestFailureModes:
    def test_execution_failure_is_not_comparable(self, employees_database):
        solved = solved_for(
            [
                "SELECT nosuchcol FROM Employees WHERE empId = 12",
                "SELECT nosuchcol FROM Employees WHERE empId = 15",
            ]
        )
        report = validate_solved(employees_database, solved[0])
        assert not report.comparable
        assert "execution failed" in report.reason
