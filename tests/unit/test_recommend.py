"""Unit tests for the recommendation module (the paper's future work)."""

import pytest

from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log
from repro.recommend import (
    TemplateTransitionModel,
    evaluate,
    split_blocks,
)

A = "SELECT a FROM t WHERE id = {}"
B = "SELECT b FROM t WHERE id = {}"
C = "SELECT c FROM u WHERE id = {}"


def blocks_for(entries):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts, user) in enumerate(entries)
    )
    return build_blocks(parse_log(log).queries)


def trained(entries, smoothing=0.0):
    model = TemplateTransitionModel(smoothing=smoothing)
    return model.train_on_blocks(blocks_for(entries)), blocks_for(entries)


class TestModel:
    def test_most_frequent_successor_ranks_first(self):
        entries = []
        clock = 0.0
        for _ in range(5):
            entries += [(A.format(1), clock, "u"), (B.format(1), clock + 1, "u")]
            clock += 10
        entries += [(A.format(2), clock, "u"), (C.format(1), clock + 1, "u")]
        model, blocks = trained(entries)
        a_id = blocks[0].queries[0].template_id
        suggestions = model.recommend(a_id, k=2)
        assert len(suggestions) == 2
        assert suggestions[0].score > suggestions[1].score
        assert "SELECT b" in suggestions[0].skeleton_sql

    def test_unknown_context_falls_back_to_unigrams(self):
        model, _ = trained([(A.format(1), 0.0, "u"), (B.format(1), 1.0, "u")])
        suggestions = model.recommend("no-such-template", k=1)
        assert len(suggestions) == 1

    def test_empty_model_recommends_nothing(self):
        assert TemplateTransitionModel().recommend("x") == []

    def test_transitions_do_not_cross_blocks(self):
        # two separate users: no A→B transition should be learned
        model, blocks = trained(
            [(A.format(1), 0.0, "u1"), (B.format(1), 0.5, "u2")]
        )
        assert model.transition_count == 0

    def test_scores_are_probabilities(self):
        entries = [(A.format(i), float(i), "u") for i in range(3)] + [
            (B.format(1), 3.0, "u")
        ]
        model, blocks = trained(entries)
        a_id = blocks[0].queries[0].template_id
        total = sum(s.score for s in model.recommend(a_id, k=10))
        assert total == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TemplateTransitionModel(smoothing=-1)
        with pytest.raises(ValueError):
            TemplateTransitionModel().recommend("x", k=0)

    def test_vocabulary_size(self):
        model, _ = trained(
            [(A.format(1), 0.0, "u"), (B.format(1), 1.0, "u"), (A.format(2), 2.0, "u")]
        )
        assert model.vocabulary_size == 2


class TestEvaluation:
    def test_split_blocks_time_ordered(self):
        blocks = blocks_for(
            [(A.format(1), 0.0, "u1"), (B.format(1), 100.0, "u2"),
             (C.format(1), 200.0, "u3")]
        )
        train, test = split_blocks(blocks, train_share=0.67)
        assert len(train) == 2 and len(test) == 1
        assert test[0].queries[0].timestamp == 200.0

    def test_split_blocks_invalid_share(self):
        with pytest.raises(ValueError):
            split_blocks([], train_share=1.0)

    def test_perfect_hit_rate_on_deterministic_pattern(self):
        entries = []
        clock = 0.0
        for _ in range(10):
            entries += [(A.format(1), clock, "u"), (B.format(1), clock + 1, "u")]
            clock += 1000  # separate blocks
        blocks = blocks_for(entries)
        train, test = blocks[:8], blocks[8:]
        model = TemplateTransitionModel().train_on_blocks(train)
        report = evaluate(model, test, k=1)
        assert report.hit_rate == 1.0
        assert report.evaluated_pairs == 2

    def test_antipattern_rate_counts_flagged_templates(self):
        entries = [(A.format(1), 0.0, "u"), (B.format(1), 1.0, "u")]
        blocks = blocks_for(entries)
        model = TemplateTransitionModel().train_on_blocks(blocks)
        b_id = blocks[0].queries[1].template_id
        report = evaluate(
            model, blocks, k=1, antipattern_templates={b_id}
        )
        assert report.antipattern_rate == 1.0

    def test_empty_test_set(self):
        model = TemplateTransitionModel()
        report = evaluate(model, [], k=3)
        assert report.hit_rate == 0.0
        assert report.evaluated_pairs == 0
