"""Unit tests for the SQL parser."""

import pytest

from repro.sqlparser import (
    ParseError,
    UnsupportedStatementError,
    ast,
    parse,
    parse_select,
)


class TestSelectList:
    def test_single_column(self):
        stmt = parse_select("SELECT name FROM t")
        assert len(stmt.items) == 1
        assert stmt.items[0].expr == ast.ColumnRef(name="name")

    def test_qualified_column(self):
        stmt = parse_select("SELECT e.name FROM t e")
        assert stmt.items[0].expr == ast.ColumnRef(name="name", table="e")

    def test_three_part_name_keeps_last_two(self):
        stmt = parse_select("SELECT dbo.t.c FROM t")
        assert stmt.items[0].expr == ast.ColumnRef(name="c", table="t")

    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert stmt.items[0].expr == ast.Star()

    def test_qualified_star(self):
        stmt = parse_select("SELECT p.* FROM t p")
        assert stmt.items[0].expr == ast.Star(table="p")

    def test_alias_with_as(self):
        stmt = parse_select("SELECT a AS b FROM t")
        assert stmt.items[0].alias == "b"

    def test_alias_without_as(self):
        stmt = parse_select("SELECT a b FROM t")
        assert stmt.items[0].alias == "b"

    def test_tsql_equals_alias(self):
        stmt = parse_select("SELECT total = a FROM t")
        assert stmt.items[0].alias == "total"
        assert stmt.items[0].expr == ast.ColumnRef(name="a")

    def test_multiple_items(self):
        stmt = parse_select("SELECT a, b, c FROM t")
        assert [item.expr.name for item in stmt.items] == ["a", "b", "c"]

    def test_select_without_from(self):
        stmt = parse_select("SELECT 1")
        assert stmt.from_sources == ()
        assert stmt.items[0].expr == ast.Literal("1", "number")

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_top(self):
        stmt = parse_select("SELECT TOP 10 a FROM t")
        assert stmt.top == ast.TopClause(count=ast.Literal("10", "number"))

    def test_top_percent(self):
        stmt = parse_select("SELECT TOP 5 PERCENT a FROM t")
        assert stmt.top.percent

    def test_select_into_is_consumed(self):
        stmt = parse_select("SELECT a INTO #tmp FROM t")
        assert stmt.items[0].expr == ast.ColumnRef(name="a")
        assert stmt.from_sources[0] == ast.TableName(name="t")


class TestFromClause:
    def test_table_with_schema(self):
        stmt = parse_select("SELECT a FROM dbo.t")
        assert stmt.from_sources[0] == ast.TableName(name="t", schema="dbo")

    def test_table_alias_variants(self):
        for sql in ("SELECT a FROM t AS x", "SELECT a FROM t x"):
            assert parse_select(sql).from_sources[0].alias == "x"

    def test_comma_join(self):
        stmt = parse_select("SELECT a FROM t, u")
        assert len(stmt.from_sources) == 2

    def test_inner_join(self):
        stmt = parse_select("SELECT a FROM t JOIN u ON t.id = u.id")
        join = stmt.from_sources[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "INNER"
        assert isinstance(join.condition, ast.Comparison)

    @pytest.mark.parametrize(
        "sql,kind",
        [
            ("SELECT a FROM t LEFT JOIN u ON t.i=u.i", "LEFT"),
            ("SELECT a FROM t LEFT OUTER JOIN u ON t.i=u.i", "LEFT"),
            ("SELECT a FROM t RIGHT JOIN u ON t.i=u.i", "RIGHT"),
            ("SELECT a FROM t FULL OUTER JOIN u ON t.i=u.i", "FULL"),
            ("SELECT a FROM t CROSS JOIN u", "CROSS"),
        ],
    )
    def test_join_kinds(self, sql, kind):
        assert parse_select(sql).from_sources[0].kind == kind

    def test_cross_join_has_no_condition(self):
        join = parse_select("SELECT a FROM t CROSS JOIN u").from_sources[0]
        assert join.condition is None

    def test_join_chain_is_left_nested(self):
        stmt = parse_select(
            "SELECT a FROM t JOIN u ON t.i=u.i JOIN v ON u.j=v.j"
        )
        outer = stmt.from_sources[0]
        assert isinstance(outer.left, ast.Join)
        assert isinstance(outer.right, ast.TableName)

    def test_missing_on_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t JOIN u")

    def test_function_table(self):
        stmt = parse_select("SELECT a FROM fGetNearbyObjEq(1, 2, 3) n")
        source = stmt.from_sources[0]
        assert isinstance(source, ast.FunctionTable)
        assert source.call.name == "fGetNearbyObjEq"
        assert source.alias == "n"
        assert len(source.call.args) == 3

    def test_schema_qualified_function_table(self):
        stmt = parse_select("SELECT a FROM dbo.fGetNearestObjEq(1,2,3)")
        assert stmt.from_sources[0].call.schema == "dbo"

    def test_derived_table(self):
        stmt = parse_select("SELECT a FROM (SELECT a FROM t) sub")
        source = stmt.from_sources[0]
        assert isinstance(source, ast.DerivedTable)
        assert source.alias == "sub"

    def test_parenthesised_join(self):
        stmt = parse_select("SELECT a FROM (t JOIN u ON t.i = u.i)")
        assert isinstance(stmt.from_sources[0], ast.Join)


class TestWhereClause:
    def test_comparison_operators_normalised(self):
        ne1 = parse_select("SELECT a FROM t WHERE a <> 1").where
        ne2 = parse_select("SELECT a FROM t WHERE a != 1").where
        assert ne1 == ne2
        assert ne1.op == "<>"

    def test_and_or_precedence(self):
        where = parse_select("SELECT a FROM t WHERE a=1 OR b=2 AND c=3").where
        assert isinstance(where, ast.Or)
        assert isinstance(where.right, ast.And)

    def test_parentheses_override_precedence(self):
        where = parse_select("SELECT a FROM t WHERE (a=1 OR b=2) AND c=3").where
        assert isinstance(where, ast.And)
        assert isinstance(where.left, ast.Or)

    def test_not(self):
        where = parse_select("SELECT a FROM t WHERE NOT a = 1").where
        assert isinstance(where, ast.Not)

    def test_in_list(self):
        where = parse_select("SELECT a FROM t WHERE a IN (1, 2, 3)").where
        assert isinstance(where, ast.InList)
        assert len(where.items) == 3
        assert not where.negated

    def test_not_in_list(self):
        where = parse_select("SELECT a FROM t WHERE a NOT IN ('x')").where
        assert where.negated

    def test_in_subquery(self):
        where = parse_select(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u)"
        ).where
        assert isinstance(where, ast.InSubquery)

    def test_between(self):
        where = parse_select("SELECT a FROM t WHERE a BETWEEN 1 AND 5").where
        assert isinstance(where, ast.Between)
        assert where.low == ast.Literal("1", "number")
        assert where.high == ast.Literal("5", "number")

    def test_between_binds_tighter_than_and(self):
        where = parse_select(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b = 2"
        ).where
        assert isinstance(where, ast.And)
        assert isinstance(where.left, ast.Between)

    def test_is_null(self):
        where = parse_select("SELECT a FROM t WHERE a IS NULL").where
        assert where == ast.IsNull(expr=ast.ColumnRef(name="a"))

    def test_is_not_null(self):
        where = parse_select("SELECT a FROM t WHERE a IS NOT NULL").where
        assert where.negated

    def test_equals_null_literal(self):
        where = parse_select("SELECT a FROM t WHERE a = NULL").where
        assert isinstance(where, ast.Comparison)
        assert where.right == ast.Literal("NULL", "null")

    def test_like(self):
        where = parse_select("SELECT a FROM t WHERE a LIKE 'x%'").where
        assert isinstance(where, ast.Like)

    def test_exists(self):
        where = parse_select(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)"
        ).where
        assert isinstance(where, ast.Exists)


class TestExpressions:
    def test_arithmetic_precedence(self):
        expr = parse_select("SELECT 1 + 2 * 3 FROM t").items[0].expr
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus_folds_into_number(self):
        expr = parse_select("SELECT -5 FROM t").items[0].expr
        assert expr == ast.Literal("-5", "number")

    def test_unary_minus_on_column(self):
        expr = parse_select("SELECT -a FROM t").items[0].expr
        assert isinstance(expr, ast.UnaryOp)

    def test_unary_plus_is_dropped(self):
        expr = parse_select("SELECT +5 FROM t").items[0].expr
        assert expr == ast.Literal("5", "number")

    def test_function_call(self):
        expr = parse_select("SELECT count(*) FROM t").items[0].expr
        assert expr == ast.FunctionCall(name="count", args=(ast.Star(),))

    def test_count_distinct(self):
        expr = parse_select("SELECT count(DISTINCT a) FROM t").items[0].expr
        assert expr.distinct

    def test_zero_arg_function(self):
        expr = parse_select("SELECT getdate() FROM t").items[0].expr
        assert expr == ast.FunctionCall(name="getdate")

    def test_case_searched(self):
        expr = parse_select(
            "SELECT CASE WHEN a=1 THEN 'x' ELSE 'y' END FROM t"
        ).items[0].expr
        assert isinstance(expr, ast.CaseExpression)
        assert expr.operand is None
        assert expr.else_result == ast.Literal("y", "string")

    def test_case_simple(self):
        expr = parse_select(
            "SELECT CASE a WHEN 1 THEN 'x' END FROM t"
        ).items[0].expr
        assert expr.operand == ast.ColumnRef(name="a")

    def test_case_without_when_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT CASE END FROM t")

    def test_cast(self):
        expr = parse_select("SELECT CAST(a AS varchar(10)) FROM t").items[0].expr
        assert expr == ast.Cast(expr=ast.ColumnRef(name="a"), type_name="varchar(10)")

    def test_scalar_subquery(self):
        expr = parse_select("SELECT (SELECT max(a) FROM t) FROM u").items[0].expr
        assert isinstance(expr, ast.ScalarSubquery)

    def test_variable(self):
        expr = parse_select("SELECT a FROM t WHERE b = @ra").where.right
        assert expr == ast.Variable(name="ra")


class TestGroupOrder:
    def test_group_by(self):
        stmt = parse_select("SELECT a, count(*) FROM t GROUP BY a")
        assert stmt.group_by == (ast.ColumnRef(name="a"),)

    def test_having(self):
        stmt = parse_select(
            "SELECT a FROM t GROUP BY a HAVING count(*) > 3"
        )
        assert isinstance(stmt.having, ast.Comparison)

    def test_order_by_defaults_ascending(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a")
        assert not stmt.order_by[0].descending

    def test_order_by_desc(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending


class TestStatements:
    def test_union(self):
        stmt = parse("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(stmt, ast.Union)
        assert not stmt.all

    def test_union_all(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert stmt.all

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse("SELECT 1;"), ast.SelectStatement)

    def test_parse_select_rejects_union(self):
        with pytest.raises(UnsupportedStatementError):
            parse_select("SELECT a FROM t UNION SELECT b FROM u")

    @pytest.mark.parametrize(
        "sql",
        [
            "INSERT INTO t VALUES (1)",
            "UPDATE t SET a = 1",
            "DELETE FROM t",
            "CREATE TABLE t (a int)",
            "DROP TABLE t",
            "EXEC sp_who",
        ],
    )
    def test_non_select_raises_unsupported(self, sql):
        with pytest.raises(UnsupportedStatementError):
            parse(sql)

    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "   ",
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP a",
            "SELECT a FROM t trailing garbage ON x",
            "SELECT a WHERE (b = 1",
        ],
    )
    def test_malformed_raises_parse_error(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_error_messages_carry_position(self):
        with pytest.raises(ParseError) as exc_info:
            parse("SELECT a FROM t WHERE >")
        assert exc_info.value.line == 1
        assert exc_info.value.column > 0


class TestPreTokenizedPath:
    """Parse engine v4's single-lex entry: ``parse_tokens``.

    The cache's cold path feeds the scanner's own token list straight
    into the parser; the text entry ``parse`` is a thin shim over it.
    Both must stay observably the same function.
    """

    CORPUS = [
        "SELECT a FROM t",
        "SELECT TOP 5 PERCENT a, b AS c FROM s.t AS x WHERE a <> -3.5e2",
        "SELECT count(*) FROM t WHERE a BETWEEN 1 AND 2 OR b IS NOT NULL",
        "SELECT a FROM t JOIN u ON t.x = u.y ORDER BY a DESC",
        "SELECT a FROM t UNION ALL SELECT b FROM u",
        "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
    ]

    @pytest.mark.parametrize("sql", CORPUS)
    def test_text_shim_equivalence(self, sql):
        from repro.sqlparser import parse_tokens, tokenize

        assert parse_tokens(tokenize(sql)) == parse(sql)

    @pytest.mark.parametrize("sql", CORPUS)
    def test_scan_fed_tokens_equivalence(self, sql):
        # The exact cold-path wiring: Scan.tokens, no re-tokenization.
        from repro.sqlparser import parse_tokens
        from repro.sqlparser.scanner import scan

        scanned = scan(sql)
        assert scanned.error is None
        assert parse_tokens(scanned.tokens) == parse(sql)

    def test_error_positions_preserved(self):
        from repro.sqlparser import parse_tokens, tokenize

        sql = "SELECT a,\n  b FROM t WHERE >"
        with pytest.raises(ParseError) as via_text:
            parse(sql)
        with pytest.raises(ParseError) as via_tokens:
            parse_tokens(tokenize(sql))
        assert str(via_tokens.value) == str(via_text.value)
        assert via_tokens.value.line == via_text.value.line == 2
        assert via_tokens.value.column == via_text.value.column

    def test_eof_only_stream_raises_parse_error(self):
        from repro.sqlparser import parse_tokens, tokenize

        with pytest.raises(ParseError, match="empty statement"):
            parse_tokens(tokenize(""))

    def test_trailing_semicolon_then_eof(self):
        from repro.sqlparser import parse_tokens, tokenize

        statement = parse_tokens(tokenize("SELECT a FROM t;"))
        assert isinstance(statement, ast.SelectStatement)

    def test_garbage_after_eof_position_is_reported(self):
        from repro.sqlparser import parse_tokens, tokenize

        # The trailing-garbage check fires at the garbage token's
        # position, identically on both entry paths.
        sql = "SELECT a FROM t )"
        with pytest.raises(ParseError) as via_tokens:
            parse_tokens(tokenize(sql))
        with pytest.raises(ParseError) as via_text:
            parse(sql)
        assert str(via_tokens.value) == str(via_text.value)
        assert via_tokens.value.column == via_text.value.column == 17
