"""The persistent template dictionary: save/load/preload lifecycle.

Parse engine v3 lets a run warm its parse caches from a previous run's
templates — a sidecar of witness statements (``TemplateCache.save_dict``
/ ``load_dict``), the columnar store's own interned-template witnesses,
or the witness list a checkpoint carries.  The safety contract is that a
dictionary can only ever change *speed*: every witness re-parses through
the run's own cold path on load, and any damaged, stale or mismatched
sidecar falls back to a cold start with a warning — never an exception,
never a different clean log.
"""

import os
import struct
import warnings
import zlib

import pytest

import repro
from repro.log import LogRecord
from repro.pipeline.config import ExecutionConfig
from repro.skeleton.cache import (
    _DICT_MAGIC,
    TEMPLATE_DICT_VERSION,
    TemplateCache,
)
from repro.workload.generator import generate_log

STATEMENTS = [
    "SELECT a FROM t WHERE b = 1",
    "SELECT name FROM employee WHERE empid = 8",
    "SELECT x FROM t WHERE name = 'abc' AND k IN (1, 2, 3)",
    "SELECT TOP 10 a FROM t WHERE b BETWEEN 1 AND 2 ORDER BY a DESC",
]


def record(sql, seq=0):
    return LogRecord(seq=seq, sql=sql, timestamp=float(seq), user="u")


def warmed_cache():
    cache = TemplateCache()
    for i, sql in enumerate(STATEMENTS):
        cache.build(record(sql, seq=i))
    return cache


class TestSaveLoadRoundTrip:
    def test_round_trip_restores_every_witness(self, tmp_path):
        path = tmp_path / "templates.dict"
        cache = warmed_cache()
        saved = cache.save_dict(path)
        assert saved == len(cache.dict_witnesses()) > 0
        witnesses = TemplateCache.load_dict(path)
        assert witnesses is not None
        assert sorted(witnesses) == sorted(cache.dict_witnesses())

    def test_preload_is_counter_neutral_and_hits_afterwards(self, tmp_path):
        path = tmp_path / "templates.dict"
        warmed_cache().save_dict(path)
        fresh = TemplateCache()
        loaded = fresh.preload(TemplateCache.load_dict(path))
        assert loaded == len(STATEMENTS)
        # Warming must not pollute the run's cache-traffic ledger.
        assert fresh.hits == 0 and fresh.misses == 0
        # Re-fetching a witness's sibling is now a hit, not a cold parse.
        sibling = record("SELECT a FROM t WHERE b = 999", seq=50)
        assert fresh.fetch(sibling) is not None
        assert fresh.hits == 1 and fresh.misses == 0

    def test_missing_file_is_silent(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert TemplateCache.load_dict(tmp_path / "absent.dict") is None

    def test_unparseable_witnesses_are_skipped(self):
        cache = TemplateCache()
        loaded = cache.preload(["SELECT '", "SELECT a FROM t WHERE b = 1"])
        assert loaded == 1


class TestRejection:
    """Mismatched or damaged sidecars fall back cold — warn, never raise."""

    def save(self, tmp_path, **knobs):
        path = tmp_path / "templates.dict"
        warmed_cache().save_dict(path, **knobs)
        return path

    def test_knob_mismatch_is_rejected(self, tmp_path):
        path = self.save(tmp_path, fold_variables=False)
        with pytest.warns(UserWarning, match="different parse knobs"):
            assert TemplateCache.load_dict(path, fold_variables=True) is None
        with pytest.warns(UserWarning, match="different parse knobs"):
            assert TemplateCache.load_dict(path, strict_triple=True) is None

    def test_version_mismatch_is_rejected(self, tmp_path, monkeypatch):
        import repro.skeleton.cache as cache_mod

        path = self.save(tmp_path)
        monkeypatch.setattr(
            cache_mod, "TEMPLATE_DICT_VERSION", TEMPLATE_DICT_VERSION + 1
        )
        with pytest.warns(UserWarning, match="format version"):
            assert TemplateCache.load_dict(path) is None

    def test_bad_magic_is_rejected(self, tmp_path):
        path = tmp_path / "templates.dict"
        path.write_bytes(b"not a dictionary at all")
        with pytest.warns(UserWarning, match="bad magic"):
            assert TemplateCache.load_dict(path) is None

    def test_truncated_sidecar_falls_back_cold(self, tmp_path):
        path = self.save(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 5])
        with pytest.warns(UserWarning, match="truncated or corrupt"):
            assert TemplateCache.load_dict(path) is None

    def test_bitflip_fails_the_checksum(self, tmp_path):
        path = self.save(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.warns(UserWarning, match="checksum mismatch"):
            assert TemplateCache.load_dict(path) is None

    def test_valid_envelope_malformed_payload(self, tmp_path):
        # A well-formed blob whose JSON payload is the wrong shape must
        # be rejected by the schema checks, not trusted.
        body = zlib.compress(
            b'{"version": %d, "fold_variables": false, '
            b'"strict_triple": false, "witnesses": "oops"}'
            % TEMPLATE_DICT_VERSION
        )
        path = tmp_path / "templates.dict"
        path.write_bytes(_DICT_MAGIC + struct.pack("<I", zlib.crc32(body)) + body)
        with pytest.warns(UserWarning, match="malformed witness"):
            assert TemplateCache.load_dict(path) is None

    def test_corrupt_dict_never_changes_the_clean_log(self, tmp_path):
        log = generate_log(seed=11, scale=0.03)
        reference = repro.clean(log)
        path = tmp_path / "templates.dict"
        path.write_bytes(b"garbage")
        with pytest.warns(UserWarning, match="bad magic"):
            result = repro.clean(log, template_dict=path)
        assert result.clean_log.records() == reference.clean_log.records()
        # The run overwrote the damaged sidecar with a good one.
        assert TemplateCache.load_dict(path) is not None


class TestEndToEndWarmStart:
    def test_second_run_preloads_and_matches(self, tmp_path):
        log = generate_log(seed=11, scale=0.03)
        path = tmp_path / "templates.dict"
        first = repro.clean(log, template_dict=path)
        counters = first.metrics.as_dict()["stages"]["parse"]["counters"]
        assert counters["parse_dict_preloaded"] == 0
        assert counters["parse_cold"] == counters["parse_cache_misses"]
        assert path.exists()

        second = repro.clean(log, template_dict=path)
        warm = second.metrics.as_dict()["stages"]["parse"]["counters"]
        assert warm["parse_dict_preloaded"] > 0
        assert warm["parse_cold"] < counters["parse_cold"]
        assert second.clean_log.records() == first.clean_log.records()
        assert not second.metrics.conservation_violations()

    @pytest.mark.parametrize(
        "execution",
        [
            ExecutionConfig(mode="streaming"),
            ExecutionConfig(mode="parallel", workers=1),
            ExecutionConfig(mode="parallel", workers=2),
        ],
        ids=["streaming", "parallel-inline", "parallel-pool"],
    )
    def test_every_executor_warms_identically(self, tmp_path, execution):
        log = generate_log(seed=11, scale=0.03)
        path = tmp_path / "templates.dict"
        reference = repro.clean(log, template_dict=path)
        from dataclasses import replace

        result = repro.clean(
            log, execution=replace(execution, template_dict=str(path))
        )
        counters = result.metrics.as_dict()["stages"]["parse"]["counters"]
        assert counters["parse_dict_preloaded"] > 0
        assert result.clean_log.records() == reference.clean_log.records()
        assert not result.metrics.conservation_violations()


class TestStoreAutoWarm:
    def test_columnar_store_witnesses_warm_the_run(self, tmp_path):
        from repro.store.columnar import write_columnar
        from repro.store.sources import ColumnarSource

        log = generate_log(seed=11, scale=0.03)
        store = tmp_path / "log.columnar"
        write_columnar(log, store)
        assert ColumnarSource(store).template_witnesses()
        reference = repro.clean(log)
        result = repro.clean(str(store), execution="streaming")
        counters = result.metrics.as_dict()["stages"]["parse"]["counters"]
        assert counters["parse_dict_preloaded"] > 0
        assert result.clean_log.records() == reference.clean_log.records()

    def test_damaged_store_dictionary_degrades_cold(self, tmp_path):
        from repro.store.columnar import write_columnar
        from repro.store.sources import ColumnarSource

        log = generate_log(seed=11, scale=0.03)
        store = tmp_path / "log.columnar"
        write_columnar(log, store)
        (store / "templates.bin").write_bytes(b"damaged")
        assert ColumnarSource(store).template_witnesses() == []

    def test_explicit_dict_beats_store_witnesses(self, tmp_path):
        # An explicit --template-dict must win over the store's own
        # witnesses (the user asked for that sidecar specifically).
        from repro.store.columnar import write_columnar

        log = generate_log(seed=11, scale=0.03)
        store = tmp_path / "log.columnar"
        write_columnar(log, store)
        path = tmp_path / "explicit.dict"
        result = repro.clean(
            str(store), execution="streaming", template_dict=path
        )
        counters = result.metrics.as_dict()["stages"]["parse"]["counters"]
        # First run against an absent explicit dict: cold, then saved.
        assert counters["parse_dict_preloaded"] == 0
        assert path.exists()


class TestCheckpointWitnessCarry:
    def test_resumed_run_restarts_warm(self, tmp_path):
        log = generate_log(seed=11, scale=0.03)
        reference = repro.clean(log, execution="streaming")

        from repro.pipeline.streaming import StreamingCleaner

        config = repro.PipelineConfig(
            execution=ExecutionConfig(mode="streaming")
        )
        records = log.records()
        half = len(records) // 2
        first = StreamingCleaner(config)
        head = list(first.feed(records[:half]))
        state = first.export_state()
        assert state["template_dict_witnesses"]

        second = StreamingCleaner(config)
        second.restore_state(state)
        tail = list(second.feed(records[half:])) + list(second.finish())
        assert head + tail == reference.clean_log.records()
        # The carried witnesses warmed the revived cache (the stat is
        # mirrored into the ledger at the next counter flush).
        assert second.stats.parse_dict_preloaded > 0

    def test_old_checkpoint_without_witnesses_still_restores(self, tmp_path):
        log = generate_log(seed=11, scale=0.03)
        from repro.pipeline.streaming import StreamingCleaner

        config = repro.PipelineConfig(
            execution=ExecutionConfig(mode="streaming")
        )
        records = log.records()
        first = StreamingCleaner(config)
        list(first.feed(records[: len(records) // 2]))
        state = first.export_state()
        state.pop("template_dict_witnesses")
        second = StreamingCleaner(config)
        second.restore_state(state)  # must not raise
        assert second.stats.parse_dict_preloaded == 0


class TestCliFlag:
    def test_template_dict_flag_round_trips(self, tmp_path, capsys):
        from repro.cli.main import main
        from repro.log.io import write_csv

        log = generate_log(seed=11, scale=0.02)
        source = tmp_path / "log.csv"
        write_csv(log, source)
        path = tmp_path / "templates.dict"
        assert (
            main(["clean", str(source), "--template-dict", str(path)]) == 0
        )
        assert path.exists()
        assert TemplateCache.load_dict(path)
        capsys.readouterr()
        assert (
            main(["clean", str(source), "--template-dict", str(path)]) == 0
        )
