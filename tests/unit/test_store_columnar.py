"""Unit tests for the columnar store format (repro.store.columnar)."""

import json
import zlib

import pytest

from repro.log import LogRecord, QueryLog
from repro.store.columnar import (
    FORMAT_NAME,
    MARKER,
    VERBATIM_TEMPLATE,
    ColumnarWriter,
    chunk_file_name,
    decode_sql,
    encode_sql,
    is_columnar_store,
    iter_columnar_chunks,
    load_templates,
    read_manifest,
    store_size_bytes,
    write_columnar,
)
from repro.store.sources import ColumnarSource


def sample_records():
    return [
        LogRecord(0, "SELECT a FROM t WHERE id = 7", 1.0, "u1", "1.2.3.4", "s1", 3),
        LogRecord(1, "SELECT a FROM t WHERE id = 99", 2.0, "u1", None, None, None),
        LogRecord(2, "SELECT 'it''s' FROM t", 3.0, "u2", None, None, 0),
        LogRecord(3, "SELEKT not sql at all !!", 4.0, None, None, None, None),
    ]


class TestSqlCodec:
    def test_numbers_and_strings_are_lifted(self):
        template, constants = encode_sql("SELECT a FROM t WHERE id = 7 AND b = 'x'")
        assert constants == ["7", "'x'"]
        assert template.count(MARKER) == 2
        assert "7" not in template and "'x'" not in template

    def test_decode_is_exact_inverse(self):
        for sql in [
            "SELECT a FROM t WHERE id = 7",
            "SELECT 'it''s a trap' FROM t1 WHERE x = 1.5e-3",
            "SELECT objID2 FROM PhotoObj p WHERE p.ra BETWEEN 1.0 AND 2.0",
            "",
            "no constants here",
        ]:
            template, constants = encode_sql(sql)
            assert decode_sql(template, constants) == sql

    def test_identifier_digits_stay_in_template(self):
        template, constants = encode_sql("SELECT x FROM t1 WHERE t1.c2 = 5")
        assert constants == ["5"]
        assert "t1" in template and "c2" in template

    def test_digits_inside_strings_are_not_double_lifted(self):
        sql = "SELECT '123 abc' FROM t"
        template, constants = encode_sql(sql)
        assert constants == ["'123 abc'"]
        assert decode_sql(template, constants) == sql

    def test_marker_byte_rejected(self):
        with pytest.raises(ValueError, match="marker"):
            encode_sql("SELECT \x00 FROM t")

    def test_decode_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            decode_sql(f"a {MARKER} b", [])


class TestStoreRoundTrip:
    def test_round_trip_exact(self, tmp_path):
        records = sample_records()
        store = tmp_path / "log.columnar"
        write_columnar(records, store, chunk_records=2)
        assert ColumnarSource(store).read().records() == QueryLog(records).records()

    def test_round_trip_preserves_file_order_and_fields(self, tmp_path):
        records = sample_records()
        store = tmp_path / "log.columnar"
        write_columnar(records, store, chunk_records=3)
        chunks = list(iter_columnar_chunks(store))
        flat = [record for chunk in chunks for record in chunk]
        assert flat == records  # file order, not sorted order

    def test_marker_statement_stored_verbatim(self, tmp_path):
        weird = LogRecord(0, "SELECT \x00 FROM t WHERE x = 1", 1.0, "u")
        store = tmp_path / "weird.columnar"
        write_columnar([weird], store)
        (chunk,) = iter_columnar_chunks(store)
        assert chunk[0].sql == weird.sql
        raw = json.loads(
            zlib.decompress((store / chunk_file_name(0)).read_bytes())
        )
        assert raw["template"] == [VERBATIM_TEMPLATE]

    def test_chunk_layout_matches_manifest(self, tmp_path):
        store = tmp_path / "log.columnar"
        write_columnar(sample_records(), store, chunk_records=3)
        manifest = read_manifest(store)
        assert manifest["format"] == FORMAT_NAME
        assert manifest["record_count"] == 4
        assert manifest["chunks"] == [3, 1]
        assert (store / chunk_file_name(0)).is_file()
        assert (store / chunk_file_name(1)).is_file()
        assert manifest["template_count"] == len(load_templates(store))

    def test_start_chunk_seeks(self, tmp_path):
        store = tmp_path / "log.columnar"
        write_columnar(sample_records(), store, chunk_records=2)
        chunks = list(iter_columnar_chunks(store, start_chunk=1))
        assert [record.seq for chunk in chunks for record in chunk] == [2, 3]

    def test_templates_deduplicate_repeated_shapes(self, tmp_path):
        records = [
            LogRecord(i, f"SELECT a FROM t WHERE id = {i}", float(i), "u")
            for i in range(100)
        ]
        store = tmp_path / "log.columnar"
        write_columnar(records, store)
        assert read_manifest(store)["template_count"] == 1

    def test_store_size_bytes_counts_data_files(self, tmp_path):
        store = tmp_path / "log.columnar"
        write_columnar(sample_records(), store)
        assert store_size_bytes(store) > 0


class TestCrashSafety:
    def test_no_manifest_until_close(self, tmp_path):
        store = tmp_path / "log.columnar"
        writer = ColumnarWriter(store, chunk_records=1)
        writer.extend(sample_records())
        assert not is_columnar_store(store)  # chunks exist, manifest doesn't
        with pytest.raises(ValueError, match="not a columnar store"):
            read_manifest(store)
        writer.close()
        assert is_columnar_store(store)

    def test_context_manager_skips_close_on_error(self, tmp_path):
        store = tmp_path / "log.columnar"
        with pytest.raises(RuntimeError):
            with ColumnarWriter(store) as writer:
                writer.append(sample_records()[0])
                raise RuntimeError("boom")
        assert not is_columnar_store(store)

    def test_close_is_idempotent(self, tmp_path):
        store = tmp_path / "log.columnar"
        writer = ColumnarWriter(store)
        writer.close()
        writer.close()
        assert read_manifest(store)["record_count"] == 0

    def test_reader_rejects_foreign_directory(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "something-else"}')
        assert not is_columnar_store(tmp_path)
        with pytest.raises(ValueError, match="format"):
            read_manifest(tmp_path)

    def test_writer_rejects_bad_chunk_records(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_records"):
            ColumnarWriter(tmp_path / "x", chunk_records=0)
