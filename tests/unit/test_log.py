"""Unit tests for the log substrate: models, dedup, IO, sessions."""

import math

import pytest

from repro import open_log
from repro.log import (
    LogRecord,
    QueryLog,
    assume_single_user,
    delete_duplicates,
    derive_users_from_ip,
    normalize_statement_text,
    sessionize_by_gap,
    threshold_sweep,
    write_csv,
    write_jsonl,
)


def make_log(entries):
    """entries: (sql, timestamp, user) triples."""
    return QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts, user) in enumerate(entries)
    )


class TestQueryLog:
    def test_records_sorted_by_time_then_seq(self):
        log = make_log([("b", 2.0, "u"), ("a", 1.0, "u")])
        assert log.statements() == ["a", "b"]

    def test_from_statements_spacing(self):
        log = QueryLog.from_statements(["a", "b", "c"], spacing=2.0)
        assert [r.timestamp for r in log] == [0.0, 2.0, 4.0]

    def test_anonymous_user_key(self):
        record = LogRecord(seq=0, sql="a", timestamp=0.0)
        assert record.user_key() == "<anonymous>"

    def test_by_user_groups_in_order(self):
        log = make_log([("a", 1.0, "u1"), ("b", 2.0, "u2"), ("c", 3.0, "u1")])
        groups = log.by_user()
        assert [r.sql for r in groups["u1"]] == ["a", "c"]

    def test_distinct_users(self):
        log = make_log([("a", 1.0, "u1"), ("b", 2.0, None)])
        assert log.distinct_users() == 2

    def test_time_span(self):
        assert make_log([("a", 5.0, "u"), ("b", 9.0, "u")]).time_span() == (5.0, 9.0)

    def test_time_span_empty(self):
        assert QueryLog().time_span() == (0.0, 0.0)

    def test_filter(self):
        log = make_log([("a", 1.0, "u"), ("b", 2.0, "u")])
        assert log.filter(lambda r: r.sql == "a").statements() == ["a"]

    def test_without_metadata_strips_users(self):
        log = make_log([("a", 1.0, "u1")])
        stripped = log.without_metadata()
        assert stripped[0].user is None
        assert stripped[0].sql == "a"

    def test_map_sql(self):
        log = make_log([("a", 1.0, "u")])
        assert log.map_sql(lambda r: r.sql.upper()).statements() == ["A"]

    def test_equality(self):
        assert make_log([("a", 1.0, "u")]) == make_log([("a", 1.0, "u")])
        assert make_log([("a", 1.0, "u")]) != make_log([("b", 1.0, "u")])


class TestDedup:
    def test_identical_within_threshold_removed(self):
        log = make_log([("q", 0.0, "u"), ("q", 0.5, "u")])
        result = delete_duplicates(log, 1.0)
        assert result.kept == 1
        assert result.removed == 1

    def test_identical_beyond_threshold_kept(self):
        log = make_log([("q", 0.0, "u"), ("q", 10.0, "u")])
        assert delete_duplicates(log, 1.0).kept == 2

    def test_different_users_never_duplicates(self):
        log = make_log([("q", 0.0, "u1"), ("q", 0.5, "u2")])
        assert delete_duplicates(log, 1.0).kept == 2

    def test_different_statements_never_duplicates(self):
        log = make_log([("q1", 0.0, "u"), ("q2", 0.5, "u")])
        assert delete_duplicates(log, 1.0).kept == 2

    def test_whitespace_normalisation(self):
        log = make_log([("SELECT  a FROM t", 0.0, "u"), ("SELECT a\nFROM t", 0.5, "u")])
        assert delete_duplicates(log, 1.0).kept == 1

    def test_run_of_reloads_collapses_to_first(self):
        log = make_log([("q", float(i) * 0.9, "u") for i in range(5)])
        result = delete_duplicates(log, 1.0)
        assert result.kept == 1
        assert result.log[0].timestamp == 0.0

    def test_infinite_threshold_removes_all_repeats(self):
        log = make_log([("q", 0.0, "u"), ("q", 1e9, "u")])
        assert delete_duplicates(log, math.inf).kept == 1

    def test_zero_threshold_keeps_spaced_repeats(self):
        log = make_log([("q", 0.0, "u"), ("q", 0.5, "u")])
        assert delete_duplicates(log, 0.0).kept == 2

    def test_negative_threshold_raises(self):
        with pytest.raises(ValueError):
            delete_duplicates(QueryLog(), -1.0)

    def test_order_preserved(self):
        log = make_log([("a", 0.0, "u"), ("b", 1.0, "u"), ("a", 100.0, "u")])
        assert delete_duplicates(log, 1.0).log.statements() == ["a", "b", "a"]

    def test_threshold_sweep_shape(self):
        log = make_log([("q", 0.0, "u"), ("q", 0.5, "u"), ("q", 30.0, "u")])
        rows = threshold_sweep(log, thresholds=(1.0, math.inf))
        assert rows[0] == ("original", 3, 100.0)
        assert rows[1][1] == 2  # 1 second threshold
        assert rows[2][1] == 1  # unrestricted
        # kept counts are monotonically non-increasing with the threshold
        assert rows[1][1] >= rows[2][1]

    def test_normalize_statement_text(self):
        assert normalize_statement_text(" a  b\n c ") == "a b c"


class TestIO:
    def _sample(self):
        return QueryLog(
            [
                LogRecord(0, "SELECT a FROM t", 1.5, "u1", "1.2.3.4", "s1", 10),
                LogRecord(1, "SELECT 'x,y' FROM t", 2.5, None, None, None, None),
            ]
        )

    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "log.csv"
        write_csv(self._sample(), path)
        assert open_log(path).read() == self._sample()

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_jsonl(self._sample(), path)
        assert open_log(path).read() == self._sample()

    def test_csv_missing_columns_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="missing columns"):
            open_log(path).read()

    def test_jsonl_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            open_log(path).read()

    def test_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_jsonl(self._sample(), path)
        path.write_text(path.read_text() + "\n\n")
        assert len(open_log(path).read()) == 2

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "log.csv"
        write_csv(self._sample(), path)
        assert open_log(path).read() == self._sample()

    def test_write_is_atomic_on_failure(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_jsonl(self._sample(), path)
        before = path.read_text()

        class Boom(Exception):
            pass

        def exploding():
            yield self._sample().records()[0]
            raise Boom

        with pytest.raises(Boom):
            write_jsonl(exploding(), path)
        # the original file is untouched and no temp litter remains
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["log.jsonl"]


class TestSessions:
    def test_assume_single_user(self):
        log = make_log([("a", 1.0, "u1"), ("b", 2.0, None)])
        unified = assume_single_user(log)
        assert {r.user for r in unified} == {"<anonymous>"}

    def test_derive_users_from_ip(self):
        log = QueryLog(
            [LogRecord(0, "a", 1.0, None, "9.9.9.9"), LogRecord(1, "b", 2.0)]
        )
        derived = derive_users_from_ip(log)
        assert derived[0].user == "9.9.9.9"
        assert derived[1].user is None

    def test_sessionize_by_gap_splits_on_large_gap(self):
        log = make_log([("a", 0.0, "u"), ("b", 10.0, "u"), ("c", 10000.0, "u")])
        sessions = {r.session for r in sessionize_by_gap(log, 1800.0)}
        assert len(sessions) == 2

    def test_sessionize_requires_positive_gap(self):
        with pytest.raises(ValueError):
            sessionize_by_gap(QueryLog(), 0.0)
