"""Unit tests for the checkpoint layer (repro.store.checkpoint)."""

import dataclasses
import json

import pytest

import repro
from repro.log import LogRecord, QueryLog, write_jsonl
from repro.obs import NULL, Recorder
from repro.pipeline.config import ExecutionConfig, PipelineConfig
from repro.pipeline.streaming import StreamingCleaner
from repro.store import (
    CheckpointError,
    RunCheckpoint,
    clean_streaming_source,
    config_digest,
    open_log,
    write_columnar,
)
from repro.store.checkpoint import STATE_VERSION
from repro.store.sources import InMemorySource
from repro.workload import generate_log


@pytest.fixture(scope="module")
def workload():
    return generate_log(seed=2018, scale=0.04)


def streaming_config(**execution_kwargs):
    execution_kwargs.setdefault("mode", "streaming")
    return PipelineConfig(execution=ExecutionConfig(**execution_kwargs))


class TestConfigDigest:
    def test_stable_across_calls(self):
        config = streaming_config()
        assert config_digest(config) == config_digest(streaming_config())

    def test_sensitive_to_what_matters(self):
        base = config_digest(streaming_config())
        assert config_digest(
            PipelineConfig(
                dedup_threshold=2.0,
                execution=ExecutionConfig(mode="streaming"),
            )
        ) != base
        assert config_digest(
            streaming_config(source_chunk_records=17)
        ) != base

    def test_frozensets_digest_order_free(self):
        from repro.antipatterns.base import DetectionContext

        a = PipelineConfig(
            detection=DetectionContext(key_columns=frozenset({"a", "b", "c"}))
        )
        b = PipelineConfig(
            detection=DetectionContext(key_columns=frozenset({"c", "b", "a"}))
        )
        assert config_digest(a) == config_digest(b)


class TestRunCheckpoint:
    def test_spill_round_trip(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "ck")
        records = [
            LogRecord(0, "SELECT a FROM t", 1.0, "u1", "1.2.3.4", "s", 2),
            LogRecord(1, "SELECT b FROM t", float("nan"), None, None, None, None),
        ]
        checkpoint.spill_chunk(3, records)
        loaded = checkpoint.load_spill(3)
        assert loaded[0] == records[0]
        assert loaded[1].seq == 1 and loaded[1].timestamp != loaded[1].timestamp

    def test_state_round_trip_and_version_gate(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "ck")
        assert not checkpoint.has_state()
        with pytest.raises(CheckpointError, match="nothing to resume"):
            checkpoint.load_state()
        checkpoint.save_state({"version": STATE_VERSION, "chunks_done": 2})
        assert checkpoint.load_state()["chunks_done"] == 2
        checkpoint.save_state({"version": STATE_VERSION + 1})
        with pytest.raises(CheckpointError, match="state version"):
            checkpoint.load_state()

    def test_missing_spill_is_an_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="missing spill"):
            RunCheckpoint(tmp_path).load_spill(0)


class TestStreamingStateRoundTrip:
    def test_export_restore_continues_identically(self, workload):
        config = streaming_config()
        records = workload.records()
        half = len(records) // 2

        reference = StreamingCleaner(config, recorder=NULL)
        expected = list(reference.process(records))

        first = StreamingCleaner(config, recorder=NULL)
        head = list(first.feed(records[:half]))
        state = json.loads(json.dumps(first.export_state()))  # via real JSON

        second = StreamingCleaner(config, recorder=NULL)
        second.restore_state(state)
        tail = list(second.feed(records[half:])) + list(second.finish())

        assert head + tail == expected
        ref_stats = dataclasses.asdict(reference.stats)
        res_stats = dataclasses.asdict(second.stats)
        # The cache-traffic counters (and the lazy-emission counters
        # that follow them) are restore-dependent by design: the revived
        # cleaner starts with a witness-warmed parse cache, so its
        # hit/miss/cold traffic differs from the uninterrupted run's,
        # and parse_dict_preloaded is nonzero only after a restore.
        for name in ("parse_cache_hits", "parse_cache_misses",
                     "parse_cache_evictions", "parse_lazy_hits",
                     "parse_materialised", "parse_cold",
                     "parse_dict_preloaded"):
            ref_stats.pop(name), res_stats.pop(name)
        assert res_stats == ref_stats

    def test_cache_conservation_survives_restore(self, workload):
        config = streaming_config()
        records = workload.records()
        first = StreamingCleaner(config, recorder=NULL)
        list(first.feed(records[:200]))
        state = first.export_state()
        second = StreamingCleaner(config, recorder=NULL)
        second.restore_state(state)
        list(second.feed(records[200:]))
        list(second.finish())
        stats = second.stats
        processed = (
            stats.records_in
            - stats.records_invalid
            - stats.duplicates_removed
        )
        assert stats.parse_cache_hits + stats.parse_cache_misses == processed

    def test_quarantine_survives_restore(self):
        config = PipelineConfig(
            error_policy="quarantine",
            execution=ExecutionConfig(mode="streaming"),
        )
        bad = [
            LogRecord(0, "SELECT a FROM t", 1.0, "u"),
            LogRecord(1, "SELEKT garbage", 2.0, "u"),
            LogRecord(2, "SELECT b FROM t", float("nan"), "u"),
        ]
        cleaner = StreamingCleaner(config, recorder=NULL)
        list(cleaner.feed(bad))
        state = json.loads(json.dumps(cleaner.export_state()))
        restored = StreamingCleaner(config, recorder=NULL)
        restored.restore_state(state)
        assert restored.quarantine.by_reason() == cleaner.quarantine.by_reason()
        nan_entry = [
            e for e in restored.quarantine if e.reason == "invalid_timestamp"
        ][0]
        assert nan_entry.record.timestamp != nan_entry.record.timestamp  # NaN


class TestCleanStreamingSource:
    def test_checkpointed_equals_plain(self, workload, tmp_path):
        config = streaming_config(source_chunk_records=150)
        source = InMemorySource(workload, chunk_records=150)
        plain, _ = clean_streaming_source(source, config, Recorder())
        checked, cleaner = clean_streaming_source(
            source, config, Recorder(), checkpoint_dir=tmp_path / "ck"
        )
        assert checked.records() == plain.records()
        state = RunCheckpoint(tmp_path / "ck").load_state()
        assert state["complete"] is True

    def test_resume_mid_run_reproduces_result(self, workload, tmp_path):
        config = streaming_config(source_chunk_records=100)
        source = InMemorySource(workload, chunk_records=100)
        reference, _ = clean_streaming_source(source, config, Recorder())

        # Simulate a kill after three chunks: run the driver's own loop
        # partially, checkpointing as it would, then abandon it.
        from repro.store.checkpoint import config_digest as digest_fn

        checkpoint = RunCheckpoint(tmp_path / "ck")
        recorder = Recorder()
        cleaner = StreamingCleaner(config, recorder=recorder)
        for index, chunk in enumerate(source.open_chunks()):
            if index >= 3:
                break
            emitted = list(cleaner.feed(chunk))
            checkpoint.spill_chunk(index, emitted)
            checkpoint.save_state(
                {
                    "version": STATE_VERSION,
                    "source_fingerprint": source.fingerprint(),
                    "config_digest": digest_fn(config),
                    "chunks_done": index + 1,
                    "complete": False,
                    "cleaner": cleaner.export_state(),
                    "metrics": recorder.metrics.as_dict(),
                }
            )

        resumed, _ = clean_streaming_source(
            source,
            config,
            Recorder(),
            checkpoint_dir=tmp_path / "ck",
            resume=True,
        )
        assert resumed.records() == reference.records()

    def test_resume_of_complete_run_is_idempotent(self, workload, tmp_path):
        config = streaming_config(source_chunk_records=150)
        source = InMemorySource(workload, chunk_records=150)
        first, _ = clean_streaming_source(
            source, config, Recorder(), checkpoint_dir=tmp_path / "ck"
        )
        again, _ = clean_streaming_source(
            source,
            config,
            Recorder(),
            checkpoint_dir=tmp_path / "ck",
            resume=True,
        )
        assert again.records() == first.records()

    def test_resume_rejects_changed_source(self, workload, tmp_path):
        config = streaming_config(source_chunk_records=150)
        source = InMemorySource(workload, chunk_records=150)
        clean_streaming_source(
            source, config, Recorder(), checkpoint_dir=tmp_path / "ck"
        )
        other = InMemorySource(
            workload.records()[: len(workload) // 2], chunk_records=150
        )
        with pytest.raises(CheckpointError, match="different source"):
            clean_streaming_source(
                other,
                config,
                Recorder(),
                checkpoint_dir=tmp_path / "ck",
                resume=True,
            )

    def test_resume_rejects_changed_config(self, workload, tmp_path):
        config = streaming_config(source_chunk_records=150)
        source = InMemorySource(workload, chunk_records=150)
        clean_streaming_source(
            source, config, Recorder(), checkpoint_dir=tmp_path / "ck"
        )
        changed = PipelineConfig(
            dedup_threshold=5.0,
            execution=ExecutionConfig(mode="streaming", source_chunk_records=150),
        )
        with pytest.raises(CheckpointError, match="different configuration"):
            clean_streaming_source(
                source,
                changed,
                Recorder(),
                checkpoint_dir=tmp_path / "ck",
                resume=True,
            )

    def test_resume_requires_checkpoint_dir(self, workload):
        with pytest.raises(CheckpointError, match="requires a checkpoint_dir"):
            clean_streaming_source(
                InMemorySource(workload),
                streaming_config(),
                Recorder(),
                resume=True,
            )


class TestCleanApiCheckpointing:
    def test_checkpoint_dir_rejected_outside_streaming(self, workload, tmp_path):
        for mode in ("batch", "parallel"):
            with pytest.raises(ValueError, match="streaming"):
                repro.clean(
                    workload,
                    execution=mode,
                    checkpoint_dir=tmp_path / "ck",
                )

    def test_resume_requires_checkpoint_dir(self, workload):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            repro.clean(workload, execution="streaming", resume=True)

    def test_checkpointed_path_run_matches_in_memory(self, workload, tmp_path):
        store = tmp_path / "log.columnar"
        write_columnar(workload, store, chunk_records=200)
        base = repro.clean(workload, execution="streaming")
        checked = repro.clean(
            str(store),
            execution="streaming",
            checkpoint_dir=str(tmp_path / "ck"),
        )
        assert checked.clean_log.records() == base.clean_log.records()
        assert checked.metrics.comparable() == base.metrics.comparable()
        assert checked.metrics.conservation_violations() == []
        assert checked.original is None  # out-of-core runs keep no input log

    def test_jsonl_source_checkpoint_resume(self, workload, tmp_path):
        path = tmp_path / "log.jsonl"
        write_jsonl(workload, path)
        execution = ExecutionConfig(mode="streaming", source_chunk_records=120)
        base = repro.clean(workload, execution="streaming")
        run = repro.clean(
            str(path), execution=execution, checkpoint_dir=tmp_path / "ck"
        )
        resumed = repro.clean(
            str(path),
            execution=execution,
            checkpoint_dir=tmp_path / "ck",
            resume=True,
        )
        assert run.clean_log.records() == base.clean_log.records()
        assert resumed.clean_log.records() == base.clean_log.records()
