"""Unit tests for the observability layer (``repro.obs``)."""

import io
import json
import pickle

import pytest

from repro.obs import (
    NULL,
    SHARED_STAGES,
    STAGE_COUNTERS,
    STAGES,
    InMemorySink,
    JsonlSink,
    NullRecorder,
    PipelineMetrics,
    Recorder,
    StageMetrics,
)


class TestStageMetrics:
    def test_count_accumulates(self):
        stage = StageMetrics("dedup")
        stage.count("records_in", 3)
        stage.count("records_in")
        assert stage.get("records_in") == 4
        assert stage.get("missing") == 0

    def test_count_label_buckets(self):
        stage = StageMetrics("detect")
        stage.count_label("antipatterns", "SNC", 2)
        stage.count_label("antipatterns", "DW-Stifle")
        assert stage.labels == {"antipatterns": {"SNC": 2, "DW-Stifle": 1}}

    def test_merge_folds_everything(self):
        left = StageMetrics("solve", counters={"records_in": 5},
                            wall_seconds=1.0, calls=2)
        left.count_label("solved", "SNC", 1)
        right = StageMetrics("solve", counters={"records_in": 7},
                             wall_seconds=0.5, calls=1)
        right.count_label("solved", "SNC", 2)
        right.count_label("solved", "CTH", 1)
        left.merge(right)
        assert left.get("records_in") == 12
        assert left.labels["solved"] == {"SNC": 3, "CTH": 1}
        assert left.wall_seconds == pytest.approx(1.5)
        assert left.calls == 3

    def test_as_dict_sorted_and_timing_toggle(self):
        stage = StageMetrics("parse")
        stage.count("z_last")
        stage.count("a_first")
        stage.wall_seconds = 0.25
        stage.calls = 1
        with_timings = stage.as_dict()
        assert list(with_timings["counters"]) == ["a_first", "z_last"]
        assert with_timings["wall_seconds"] == 0.25
        bare = stage.as_dict(include_timings=False)
        assert "wall_seconds" not in bare
        assert "calls" not in bare


class TestPipelineMetrics:
    def test_stage_created_on_demand(self):
        metrics = PipelineMetrics()
        stage = metrics.stage("dedup")
        assert stage is metrics.stage("dedup")
        assert stage.name == "dedup"

    def test_ensure_counters_creates_canonical_zeroes(self):
        metrics = PipelineMetrics()
        metrics.ensure_counters()
        for name in SHARED_STAGES:
            for counter in STAGE_COUNTERS[name]:
                assert metrics.stage(name).get(counter) == 0

    def test_as_dict_orders_stages_canonically(self):
        metrics = PipelineMetrics()
        metrics.stage("merge").count("records_out")
        metrics.stage("custom_extra").count("x")
        metrics.stage("dedup").count("records_in")
        names = list(metrics.as_dict()["stages"])
        assert names == ["dedup", "merge", "custom_extra"]
        assert [s for s in STAGES if s in names] == names[:2]

    def test_comparable_excludes_executor_specific_detail(self):
        metrics = PipelineMetrics()
        metrics.ensure_counters()
        metrics.stage("detect").wall_seconds = 9.9
        metrics.stage("detect").calls = 42
        metrics.stage("registry").count("patterns", 3)
        metrics.stage("merge").count("records_out", 7)
        view = metrics.comparable()
        assert set(view) == set(SHARED_STAGES)
        assert "wall_seconds" not in view["detect"]
        assert "calls" not in view["detect"]

    def test_merge_is_shard_fold(self):
        total = PipelineMetrics()
        for piece in range(3):
            shard = PipelineMetrics()
            shard.stage("dedup").count("records_in", piece + 1)
            shard.stage("detect").count_label("antipatterns", "SNC", 1)
            total.merge(shard)
        assert total.stage("dedup").get("records_in") == 6
        assert total.stage("detect").labels["antipatterns"]["SNC"] == 3

    def test_pickles_across_workers(self):
        metrics = PipelineMetrics()
        metrics.ensure_counters()
        metrics.stage("detect").count_label("antipatterns", "SNC", 2)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.as_dict() == metrics.as_dict()


class TestConservationLaws:
    def balanced(self):
        metrics = PipelineMetrics()
        metrics.ensure_counters()
        validate = metrics.stage("validate")
        validate.count("records_in", 10)
        validate.count("records_out", 10)
        dedup = metrics.stage("dedup")
        dedup.count("records_in", 10)
        dedup.count("records_out", 8)
        dedup.count("duplicates_removed", 2)
        parse = metrics.stage("parse")
        parse.count("records_in", 8)
        parse.count("records_out", 6)
        parse.count("syntax_errors", 1)
        parse.count("non_select", 1)
        metrics.stage("mine").count("queries_in", 6)
        solve = metrics.stage("solve")
        solve.count("records_in", 6)
        solve.count("records_out", 4)
        solve.count("queries_removed", 2)
        return metrics

    def test_balanced_ledger_has_no_violations(self):
        assert self.balanced().conservation_violations() == []

    def test_each_law_detects_imbalance(self):
        for stage, counter in (
            ("validate", "records_quarantined"),
            ("dedup", "duplicates_removed"),
            ("parse", "syntax_errors"),
            ("parse", "records_quarantined"),
            ("solve", "queries_removed"),
            ("mine", "queries_in"),
        ):
            metrics = self.balanced()
            metrics.stage(stage).count(counter, 1)
            violations = metrics.conservation_violations()
            assert violations, (stage, counter)
            assert any(stage in violation for violation in violations)

    def test_absent_counters_are_not_violations(self):
        assert PipelineMetrics().conservation_violations() == []


class TestRecorder:
    def test_counts_land_in_ledger(self):
        recorder = Recorder()
        recorder.count("dedup", "records_in", 4)
        recorder.count_label("detect", "antipatterns", "SNC")
        recorder.add_seconds("parse", 0.5, calls=1)
        assert recorder.metrics.stage("dedup").get("records_in") == 4
        assert recorder.metrics.stage("parse").wall_seconds == 0.5
        assert recorder.metrics.stage("parse").calls == 1

    def test_span_times_with_injected_clock(self):
        ticks = iter([10.0, 12.5])
        recorder = Recorder(clock=lambda: next(ticks))
        with recorder.span("mine"):
            pass
        stage = recorder.metrics.stage("mine")
        assert stage.wall_seconds == pytest.approx(2.5)
        assert stage.calls == 1

    def test_span_emits_event_with_fields(self):
        sink = InMemorySink()
        ticks = iter([0.0, 1.0])
        recorder = Recorder(sinks=[sink], clock=lambda: next(ticks))
        with recorder.span("detect", block="u1"):
            pass
        (event,) = sink.spans("detect")
        assert event["seconds"] == pytest.approx(1.0)
        assert event["block"] == "u1"
        assert event["seq"] == 0

    def test_span_books_time_even_on_exception(self):
        ticks = iter([0.0, 3.0])
        recorder = Recorder(clock=lambda: next(ticks))
        with pytest.raises(RuntimeError):
            with recorder.span("solve"):
                raise RuntimeError("boom")
        assert recorder.metrics.stage("solve").wall_seconds == pytest.approx(3.0)

    def test_close_emits_final_metrics_event(self):
        sink = InMemorySink()
        recorder = Recorder(sinks=[sink])
        recorder.count("dedup", "records_in", 2)
        recorder.close()
        final = sink.events[-1]
        assert final["event"] == "metrics"
        assert final["stages"]["dedup"]["counters"]["records_in"] == 2

    def test_absorb_merges_worker_ledger(self):
        worker = PipelineMetrics()
        worker.stage("solve").count("instances_solved", 3)
        recorder = Recorder()
        recorder.absorb(worker)
        recorder.absorb(worker)
        assert recorder.metrics.stage("solve").get("instances_solved") == 6


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        recorder = NullRecorder()
        recorder.count("dedup", "records_in", 5)
        recorder.count_label("detect", "antipatterns", "SNC")
        recorder.add_seconds("parse", 1.0, calls=1)
        recorder.ensure_counters()
        with recorder.span("mine"):
            pass
        recorder.close()
        assert recorder.metrics.stages == {}
        assert recorder.enabled is False

    def test_shared_singleton_is_disabled(self):
        assert isinstance(NULL, NullRecorder)
        assert NULL.enabled is False


class TestSinks:
    def test_jsonl_sink_to_stream(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit({"event": "span", "stage": "dedup"})
        sink.close()  # must NOT close a caller-owned stream
        assert not buffer.closed
        (line,) = buffer.getvalue().splitlines()
        assert json.loads(line) == {"event": "span", "stage": "dedup"}

    def test_jsonl_sink_owns_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"seq": 0})
        sink.emit({"seq": 1})
        sink.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1]

    def test_in_memory_sink_copies_events(self):
        sink = InMemorySink()
        event = {"event": "span", "stage": "parse"}
        sink.emit(event)
        event["stage"] = "mutated"
        assert sink.events[0]["stage"] == "parse"
