"""Unit tests for SNC detection and antipattern common types."""

import pytest

from repro.antipatterns import (
    DetectionContext,
    SncDetector,
    has_snc_shape,
    minimal_period,
    run_detectors,
)
from repro.antipatterns.types import AntipatternInstance
from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log


def blocks_for(statements, user="u"):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=float(i), user=user)
        for i, sql in enumerate(statements)
    )
    return build_blocks(parse_log(log).queries)


class TestSnc:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM bugs WHERE assigned_to = NULL",
            "SELECT * FROM bugs WHERE assigned_to <> NULL",
            "SELECT * FROM bugs WHERE assigned_to != NULL",
            "SELECT * FROM bugs WHERE NULL = assigned_to",
            "SELECT * FROM bugs WHERE a = 1 AND b = NULL",
        ],
    )
    def test_snc_shapes_detected(self, sql):
        instances = SncDetector().detect(blocks_for([sql]), DetectionContext())
        assert len(instances) == 1
        assert instances[0].solvable

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM bugs WHERE assigned_to IS NULL",
            "SELECT * FROM bugs WHERE assigned_to IS NOT NULL",
            "SELECT * FROM bugs WHERE assigned_to = 'NULL'",
            "SELECT * FROM bugs WHERE a = 1",
        ],
    )
    def test_correct_shapes_not_flagged(self, sql):
        assert SncDetector().detect(blocks_for([sql]), DetectionContext()) == []

    def test_snc_is_per_query(self):
        statements = [
            "SELECT * FROM bugs WHERE a = NULL",
            "SELECT * FROM bugs WHERE b <> NULL",
        ]
        instances = SncDetector().detect(blocks_for(statements), DetectionContext())
        assert len(instances) == 2
        assert all(len(i.queries) == 1 for i in instances)


class TestMinimalPeriod:
    @pytest.mark.parametrize(
        "sequence,expected",
        [
            (["a"], ("a",)),
            (["a", "a", "a"], ("a",)),
            (["a", "b", "a", "b"], ("a", "b")),
            (["a", "b", "c"], ("a", "b", "c")),
            (["a", "b", "a"], ("a", "b", "a")),
            ([], ()),
        ],
    )
    def test_minimal_period(self, sequence, expected):
        assert minimal_period(sequence) == expected


class TestAntipatternInstance:
    def test_empty_instance_rejected(self):
        with pytest.raises(ValueError):
            AntipatternInstance(label="X", queries=(), solvable=False)

    def test_run_detectors_orders_by_log_position(self):
        statements = [
            "SELECT * FROM bugs WHERE b = NULL",
            "SELECT name FROM e WHERE id = 1",
            "SELECT name FROM e WHERE id = 2",
        ]
        instances = run_detectors(
            blocks_for(statements), DetectionContext(key_columns=None)
        )
        starts = [instance.start_seq for instance in instances]
        assert starts == sorted(starts)
