"""Unit tests for the SkyServer table-valued functions."""

import math

import pytest

from repro.engine import (
    Column,
    Database,
    EngineError,
    TableSchema,
    angular_distance_arcmin,
    register_sky_functions,
)


@pytest.fixture()
def sky_db():
    database = Database()
    database.create_table(
        TableSchema(
            "photoprimary",
            (
                Column("objid", "bigint", is_key=True),
                Column("ra", "float"),
                Column("dec", "float"),
                Column("run", "int"),
                Column("camcol", "int"),
                Column("field", "int"),
                Column("type", "int"),
                Column("htmid", "bigint", is_key=True),
            ),
        ),
        [
            {"objid": 1, "ra": 145.0, "dec": 0.0, "run": 1, "camcol": 1,
             "field": 1, "type": 3, "htmid": 10},
            {"objid": 2, "ra": 145.01, "dec": 0.01, "run": 1, "camcol": 2,
             "field": 2, "type": 6, "htmid": 11},
            {"objid": 3, "ra": 300.0, "dec": 45.0, "run": 2, "camcol": 3,
             "field": 3, "type": 3, "htmid": 99},
        ],
    )
    register_sky_functions(database)
    return database


class TestAngularDistance:
    def test_zero_distance(self):
        assert angular_distance_arcmin(145.0, 0.0, 145.0, 0.0) == pytest.approx(0.0)

    def test_one_degree_on_equator_is_sixty_arcmin(self):
        assert angular_distance_arcmin(10.0, 0.0, 11.0, 0.0) == pytest.approx(
            60.0, rel=1e-6
        )

    def test_symmetry(self):
        a = angular_distance_arcmin(10.0, 20.0, 30.0, 40.0)
        b = angular_distance_arcmin(30.0, 40.0, 10.0, 20.0)
        assert a == pytest.approx(b)

    def test_antipodal(self):
        assert angular_distance_arcmin(0.0, 0.0, 180.0, 0.0) == pytest.approx(
            180.0 * 60.0
        )


class TestNearby:
    def test_nearby_returns_objects_within_radius(self, sky_db):
        rows = sky_db.execute(
            "SELECT objid FROM fGetNearbyObjEq(145.0, 0.0, 2.0)"
        ).rows
        assert sorted(rows) == [(1,), (2,)]

    def test_nearby_sorted_by_distance(self, sky_db):
        rows = sky_db.execute(
            "SELECT objid, distance FROM fGetNearbyObjEq(145.0, 0.0, 5.0)"
        ).rows
        assert rows[0][0] == 1
        assert rows[0][1] <= rows[1][1]

    def test_nearest_returns_at_most_one(self, sky_db):
        rows = sky_db.execute(
            "SELECT objid FROM dbo.fGetNearestObjEq(145.0, 0.0, 5.0)"
        ).rows
        assert rows == [(1,)]

    def test_nearest_empty_when_nothing_close(self, sky_db):
        rows = sky_db.execute(
            "SELECT objid FROM fGetNearestObjEq(0.0, -80.0, 1.0)"
        ).rows
        assert rows == []

    def test_wrong_arity_raises(self, sky_db):
        with pytest.raises(EngineError, match="expects 3 arguments"):
            sky_db.execute("SELECT * FROM fGetNearbyObjEq(1.0, 2.0)")


class TestRect:
    def test_rect_selects_bounding_box(self, sky_db):
        rows = sky_db.execute(
            "SELECT objid FROM fGetObjFromRect(144.9, -0.1, 145.1, 0.1)"
        ).rows
        assert sorted(rows) == [(1,), (2,)]

    def test_rect_corner_order_does_not_matter(self, sky_db):
        a = sky_db.execute(
            "SELECT objid FROM fGetObjFromRect(144.9, -0.1, 145.1, 0.1)"
        ).rows
        b = sky_db.execute(
            "SELECT objid FROM fGetObjFromRect(145.1, 0.1, 144.9, -0.1)"
        ).rows
        assert sorted(a) == sorted(b)

    def test_join_with_photoprimary(self, sky_db):
        rows = sky_db.execute(
            "SELECT p.type FROM fGetObjFromRect(144.9, -0.1, 145.1, 0.1) n, "
            "photoprimary p WHERE n.objid = p.objid"
        ).rows
        assert sorted(rows) == [(3,), (6,)]


class TestRegistration:
    def test_functions_require_photoprimary(self):
        database = Database()
        register_sky_functions(database)
        with pytest.raises(EngineError, match="photoprimary"):
            database.execute("SELECT * FROM fGetNearbyObjEq(1.0, 2.0, 3.0)")

    def test_unregistered_function_raises(self, sky_db):
        with pytest.raises(EngineError, match="unknown table-valued function"):
            sky_db.execute("SELECT * FROM fNoSuchFunction(1)")
