"""Unit tests of the lazy parse fast path (Parse engine v2).

A lazy :class:`TemplateCache` answers L2 fingerprint hits with
:class:`LazyParsedQuery` objects that carry only the record, the
interned skeleton facts and the constant vector; SQL text, AST and
clause features bind on first access.  These tests pin the binding
rules, the equality contract against eager queries, the materialisation
counter, and the cache-lifecycle hygiene (seed export, mode switch,
pickling) the executors rely on.
"""

import pickle

import pytest

from repro.log.models import LogRecord
from repro.patterns.models import ParsedQuery
from repro.skeleton.cache import LazyParsedQuery, TemplateCache, rebind_query
from repro.sqlparser import format_sql, parse


def record(seq: int, sql: str) -> LogRecord:
    return LogRecord(seq=seq, timestamp=float(seq), user="u", sql=sql)


def fresh_parse(rec: LogRecord) -> ParsedQuery:
    return ParsedQuery.from_statement(rec, parse(rec.sql))


def warm(cache: TemplateCache, rec: LogRecord) -> None:
    assert cache.fetch(rec) is None
    cache.store(rec.sql, fresh_parse(rec))


SQL_A = "SELECT objid, ra FROM PhotoObj WHERE objid = 1 AND ra > 0.5"
SQL_B = "SELECT objid, ra FROM PhotoObj WHERE objid = 2 AND ra > 9.25"


@pytest.fixture
def lazy_hit():
    """A lazy cache warmed with SQL_A, plus the lazy bind of SQL_B."""
    cache = TemplateCache(lazy=True)
    warm(cache, record(0, SQL_A))
    rec = record(1, SQL_B)
    query = cache.fetch(rec)
    assert type(query) is LazyParsedQuery
    return cache, rec, query


class TestLazyBinding:
    def test_l2_hit_is_lazy_l1_promotion_stays_lazy(self, lazy_hit):
        cache, _, query = lazy_hit
        # The exact text was promoted to L1; a repeat must come back
        # lazy too (rebound to its record, not re-spliced).
        again = cache.fetch(record(2, SQL_B))
        assert type(again) is LazyParsedQuery
        assert again.record.seq == 2
        assert cache.materialised == 0

    def test_skeleton_facts_need_no_ast(self, lazy_hit):
        cache, rec, query = lazy_hit
        direct = fresh_parse(rec)
        assert query.template_id == direct.template_id
        assert query.template == direct.template
        assert query.predicate_count == direct.predicate_count
        assert query.outputs == direct.outputs
        assert query.null_predicate_count() == direct.null_predicate_count()
        assert query.record is rec
        assert cache.materialised == 0, "skeleton facts must not splice"

    def test_clauses_and_equality_filter_bind_without_statement(self, lazy_hit):
        cache, rec, query = lazy_hit
        direct = fresh_parse(rec)
        assert query.clauses == direct.clauses
        assert query.equality_filter == direct.equality_filter
        assert cache.materialised == 0
        assert "statement" not in query.__dict__

    def test_statement_materialises_and_counts(self, lazy_hit):
        cache, rec, query = lazy_hit
        direct = fresh_parse(rec)
        assert format_sql(query.statement) == format_sql(direct.statement)
        assert query.select == direct.select
        assert cache.materialised == 1
        # Second access answers from __dict__ — no second count.
        query.statement
        assert cache.materialised == 1

    def test_single_equality_filter_binds_indexed_constant(self):
        cache = TemplateCache(lazy=True)
        warm(cache, record(0, "SELECT name FROM SpecObj WHERE name = 'a'"))
        rec = record(1, "SELECT name FROM SpecObj WHERE name = 'b''c'")
        query = cache.fetch(rec)
        assert type(query) is LazyParsedQuery
        direct = fresh_parse(rec)
        assert query.equality_filter == direct.equality_filter
        assert cache.materialised == 0

    def test_null_predicates_answer_from_entry(self):
        cache = TemplateCache(lazy=True)
        warm(cache, record(0, "SELECT a FROM t WHERE a = NULL AND b = 1"))
        query = cache.fetch(record(1, "SELECT a FROM t WHERE a = NULL AND b = 2"))
        assert type(query) is LazyParsedQuery
        assert query.null_predicate_count() == 1
        assert cache.materialised == 0

    def test_unknown_attribute_still_raises(self, lazy_hit):
        _, _, query = lazy_hit
        with pytest.raises(AttributeError):
            query.no_such_attribute


class TestEqualityContract:
    def test_lazy_equals_eager_both_directions(self, lazy_hit):
        _, rec, query = lazy_hit
        direct = fresh_parse(rec)
        assert query == direct
        assert direct == query
        assert not (query != direct)
        assert hash(query) == hash(direct)

    def test_record_is_part_of_equality(self, lazy_hit):
        cache, _, query = lazy_hit
        other = cache.fetch(record(9, SQL_B))
        assert other != query  # same text, different records

    def test_different_constants_compare_unequal(self, lazy_hit):
        cache, _, query = lazy_hit
        different = fresh_parse(record(1, SQL_A))
        assert query != different


class TestRebind:
    def test_lazy_rebind_keeps_fields_lazy(self, lazy_hit):
        cache, _, query = lazy_hit
        clone = rebind_query(query, record(5, SQL_B), query.interned_id)
        assert type(clone) is LazyParsedQuery
        assert clone.record.seq == 5
        assert "statement" not in clone.__dict__
        assert clone.clauses == query.clauses
        assert cache.materialised == 0

    def test_eager_rebind_is_identity_when_unchanged(self):
        rec = record(0, SQL_A)
        query = fresh_parse(rec)
        assert rebind_query(query, rec, query.interned_id) is query
        rebound = rebind_query(query, rec, 7)
        assert rebound.interned_id == 7
        assert rebound.record is rec

    def test_dataclasses_replace_materialises_fully(self, lazy_hit):
        import dataclasses

        cache, rec, query = lazy_hit
        replaced = dataclasses.replace(query, interned_id=3)
        # replace() reads every field, so the clone is fully populated
        # and correct — just no longer lazy.
        assert replaced == fresh_parse(rec)
        assert replaced.interned_id == 3
        assert cache.materialised >= 1


class TestCacheLifecycle:
    def test_set_lazy_off_purges_lazy_l1_values(self, lazy_hit):
        cache, _, _ = lazy_hit
        cache.set_lazy(False)
        query = cache.fetch(record(3, SQL_B))
        assert type(query) is ParsedQuery
        assert query == fresh_parse(record(3, SQL_B))

    def test_seed_round_trip_serves_lazy_from_l2(self, lazy_hit):
        cache, _, _ = lazy_hit
        revived = TemplateCache.from_seed(cache.export_seed())
        assert revived.materialised == 0
        rec = record(4, SQL_B)
        query = revived.fetch(rec)
        assert type(query) is LazyParsedQuery
        assert query == fresh_parse(rec)
        # Materialisations in the revived cache book to *its* counter.
        query.statement
        assert revived.materialised == 1
        assert cache.materialised == 0

    def test_lazy_query_pickles(self, lazy_hit):
        _, rec, query = lazy_hit
        clone = pickle.loads(pickle.dumps(query))
        assert type(clone) is LazyParsedQuery
        assert clone == fresh_parse(rec)

    def test_eager_cache_never_emits_lazy(self):
        cache = TemplateCache(lazy=False)
        warm(cache, record(0, SQL_A))
        query = cache.fetch(record(1, SQL_B))
        assert type(query) is ParsedQuery
        assert cache.materialised == 0
