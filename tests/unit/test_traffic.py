"""Unit tests for the traffic-report statistics."""

import pytest

from repro.analysis.traffic import traffic_report
from repro.log import LogRecord, QueryLog
from repro.pipeline import parse_log

DAY = 86_400.0


def make_log():
    records = []
    seq = 0
    # user "heavy" issues 10 queries on day 1, one session
    for i in range(10):
        records.append(
            LogRecord(
                seq=seq,
                sql=f"SELECT a FROM t WHERE x = {i}",
                timestamp=i * 10.0,
                user="heavy",
                session="s1",
            )
        )
        seq += 1
    # user "light" issues 2 queries on day 2, one session
    for i in range(2):
        records.append(
            LogRecord(
                seq=seq,
                sql="SELECT b FROM u WHERE y > 0",
                timestamp=DAY + i * 5.0,
                user="light",
                session="s2",
            )
        )
        seq += 1
    return QueryLog(records)


class TestTrafficReport:
    def test_totals(self):
        report = traffic_report(make_log())
        assert report.total_queries == 12
        assert report.distinct_users == 2

    def test_daily_volumes(self):
        report = traffic_report(make_log())
        assert len(report.days) == 2
        volumes = dict(report.days)
        assert sorted(volumes.values()) == [2, 10]

    def test_busiest_day(self):
        report = traffic_report(make_log())
        assert report.busiest_day[1] == 10

    def test_top_users_ranked(self):
        report = traffic_report(make_log())
        assert report.top_users[0] == ("heavy", 10)
        assert report.top_user_share(1) == pytest.approx(10 / 12)

    def test_session_stats(self):
        report = traffic_report(make_log())
        assert report.sessions.count == 2
        assert report.sessions.max_queries == 10
        assert report.sessions.median_queries == 6.0
        assert report.sessions.median_duration == pytest.approx((90 + 5) / 2)

    def test_table_census_with_parsed(self):
        log = make_log()
        parsed = parse_log(log).queries
        report = traffic_report(log, parsed)
        tables = dict(report.top_tables)
        assert tables == {"t": 10, "u": 2}

    def test_without_parsed_no_tables(self):
        report = traffic_report(make_log())
        assert report.top_tables == []

    def test_empty_log(self):
        report = traffic_report(QueryLog())
        assert report.total_queries == 0
        assert report.busiest_day is None
        assert report.top_user_share() == 0.0
        assert report.sessions.count == 0

    def test_top_limit(self):
        report = traffic_report(make_log(), top=1)
        assert len(report.top_users) == 1

    def test_on_synthetic_workload(self, small_workload):
        report = traffic_report(small_workload.log)
        assert report.total_queries == len(small_workload.log)
        assert report.distinct_users == small_workload.log.distinct_users()
        assert report.sessions.count > 10
        # heavy-tail shape: the top-10 users dominate (bots)
        assert report.top_user_share(10) > 0.5
