"""Unit tests for the in-memory engine: catalog, tables, executor."""

import math

import pytest

from repro.engine import (
    Catalog,
    Column,
    CostModel,
    Database,
    EngineError,
    ExecStats,
    TableSchema,
    compare_workloads,
)


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        TableSchema(
            "t",
            (
                Column("id", "bigint", is_key=True),
                Column("name"),
                Column("grp"),
                Column("val", "float"),
            ),
        ),
        [
            {"id": 1, "name": "alpha", "grp": "a", "val": 10.0},
            {"id": 2, "name": "beta", "grp": "a", "val": 20.0},
            {"id": 3, "name": "gamma", "grp": "b", "val": 30.0},
            {"id": 4, "name": None, "grp": "b", "val": None},
        ],
    )
    database.create_table(
        TableSchema(
            "u",
            (Column("id", "bigint", is_key=True), Column("extra")),
        ),
        [{"id": 1, "extra": "x1"}, {"id": 3, "extra": "x3"}, {"id": 9, "extra": "x9"}],
    )
    return database


class TestCatalog:
    def test_duplicate_table_rejected(self):
        catalog = Catalog([TableSchema("t", (Column("a"),))])
        with pytest.raises(ValueError):
            catalog.add(TableSchema("T", (Column("a"),)))

    def test_duplicate_column_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", (Column("a"), Column("A")))

    def test_key_column_names(self):
        catalog = Catalog(
            [
                TableSchema("t", (Column("id", is_key=True), Column("x"))),
                TableSchema("u", (Column("uid", is_key=True),)),
            ]
        )
        assert catalog.key_column_names() == {"id", "uid"}

    def test_case_insensitive_lookup(self):
        catalog = Catalog([TableSchema("Photo", (Column("a"),))])
        assert catalog.get("PHOTO") is not None
        assert "photo" in catalog

    def test_require_unknown_raises(self):
        with pytest.raises(KeyError):
            Catalog().require("missing")


class TestTableStorage:
    def test_insert_unknown_column_rejected(self, db):
        with pytest.raises(KeyError):
            db.table("t").insert({"nope": 1})

    def test_missing_columns_become_null(self, db):
        db.table("u").insert({"id": 99})
        rows = db.execute("SELECT extra FROM u WHERE id = 99").rows
        assert rows == [(None,)]

    def test_unknown_table_raises(self, db):
        with pytest.raises(EngineError):
            db.execute("SELECT a FROM missing")


class TestProjection:
    def test_column_projection(self, db):
        assert db.execute("SELECT name FROM t WHERE id = 1").rows == [("alpha",)]

    def test_star(self, db):
        result = db.execute("SELECT * FROM t WHERE id = 1")
        assert result.columns == ["id", "name", "grp", "val"]
        assert result.rows == [(1, "alpha", "a", 10.0)]

    def test_qualified_star(self, db):
        result = db.execute(
            "SELECT x.*, u.extra FROM t x JOIN u ON x.id = u.id WHERE x.id = 1"
        )
        assert result.columns == ["id", "name", "grp", "val", "extra"]

    def test_expression_and_alias(self, db):
        result = db.execute("SELECT val * 2 AS double FROM t WHERE id = 2")
        assert result.columns == ["double"]
        assert result.rows == [(40.0,)]

    def test_unnamed_expression_gets_positional_name(self, db):
        result = db.execute("SELECT val + 1 FROM t WHERE id = 1")
        assert result.columns == ["col1"]

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(EngineError, match="ambiguous"):
            db.execute("SELECT id FROM t, u")

    def test_unknown_column_raises(self, db):
        with pytest.raises(EngineError, match="unknown column"):
            db.execute("SELECT missing FROM t")

    def test_unknown_alias_raises(self, db):
        with pytest.raises(EngineError):
            db.execute("SELECT z.name FROM t")


class TestWhere:
    def test_comparisons(self, db):
        assert len(db.execute("SELECT id FROM t WHERE val >= 20").rows) == 2

    def test_string_comparison_case_insensitive(self, db):
        assert db.execute("SELECT id FROM t WHERE name = 'ALPHA'").rows == [(1,)]

    def test_in_list(self, db):
        assert len(db.execute("SELECT id FROM t WHERE id IN (1, 3)").rows) == 2

    def test_not_in_list_excludes_matches(self, db):
        rows = db.execute("SELECT id FROM t WHERE id NOT IN (1, 2)").rows
        assert sorted(rows) == [(3,), (4,)]

    def test_between(self, db):
        assert len(db.execute("SELECT id FROM t WHERE val BETWEEN 10 AND 20").rows) == 2

    def test_like(self, db):
        assert db.execute("SELECT id FROM t WHERE name LIKE 'al%'").rows == [(1,)]
        assert db.execute("SELECT id FROM t WHERE name LIKE '_eta'").rows == [(2,)]

    def test_null_comparison_is_never_true(self, db):
        """The SQL semantics that make SNC a bug."""
        assert db.execute("SELECT id FROM t WHERE name = NULL").rows == []
        assert db.execute("SELECT id FROM t WHERE name <> NULL").rows == []

    def test_is_null(self, db):
        assert db.execute("SELECT id FROM t WHERE name IS NULL").rows == [(4,)]
        assert len(db.execute("SELECT id FROM t WHERE name IS NOT NULL").rows) == 3

    def test_and_or_not(self, db):
        rows = db.execute(
            "SELECT id FROM t WHERE (grp = 'a' OR id = 3) AND NOT id = 2"
        ).rows
        assert sorted(rows) == [(1,), (3,)]


class TestJoins:
    def test_inner_join(self, db):
        rows = db.execute(
            "SELECT t.id, u.extra FROM t JOIN u ON t.id = u.id"
        ).rows
        assert sorted(rows) == [(1, "x1"), (3, "x3")]

    def test_left_join_pads_nulls(self, db):
        rows = db.execute(
            "SELECT t.id, u.extra FROM t LEFT JOIN u ON t.id = u.id ORDER BY id"
        ).rows
        assert rows == [(1, "x1"), (2, None), (3, "x3"), (4, None)]

    def test_right_join(self, db):
        rows = db.execute(
            "SELECT u.id, t.name FROM t RIGHT JOIN u ON t.id = u.id"
        ).rows
        assert (9, None) in rows

    def test_cross_join_cardinality(self, db):
        assert len(db.execute("SELECT t.id FROM t CROSS JOIN u").rows) == 12

    def test_comma_join_is_cross(self, db):
        assert len(db.execute("SELECT t.id FROM t, u").rows) == 12

    def test_derived_table(self, db):
        rows = db.execute(
            "SELECT s.n FROM (SELECT count(*) AS n FROM t) s"
        ).rows
        assert rows == [(4,)]


class TestAggregation:
    def test_count_star(self, db):
        assert db.execute("SELECT count(*) FROM t").rows == [(4,)]

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT count(name) FROM t").rows == [(3,)]

    def test_count_distinct(self, db):
        assert db.execute("SELECT count(DISTINCT grp) FROM t").rows == [(2,)]

    def test_sum_avg_min_max(self, db):
        row = db.execute("SELECT sum(val), avg(val), min(val), max(val) FROM t").rows[0]
        assert row == (60.0, 20.0, 10.0, 30.0)

    def test_aggregate_over_empty_group_is_null(self, db):
        assert db.execute("SELECT max(val) FROM t WHERE id = 999").rows == [(None,)]

    def test_count_over_empty_is_zero(self, db):
        assert db.execute("SELECT count(*) FROM t WHERE id = 999").rows == [(0,)]

    def test_group_by(self, db):
        rows = db.execute(
            "SELECT grp, count(*) FROM t GROUP BY grp ORDER BY grp"
        ).rows
        assert rows == [("a", 2), ("b", 2)]

    def test_having(self, db):
        # group a: avg(10, 20) = 15; group b: avg(30) = 30 (NULL skipped)
        rows = db.execute(
            "SELECT grp, avg(val) AS s FROM t GROUP BY grp HAVING avg(val) > 20"
        ).rows
        assert rows == [("b", 30.0)]

    def test_expression_over_aggregates(self, db):
        assert db.execute("SELECT max(val) - min(val) FROM t").rows == [(20.0,)]

    def test_stdev_var(self, db):
        row = db.execute("SELECT var(val), stdev(val) FROM t").rows[0]
        assert row[0] == pytest.approx(100.0)
        assert row[1] == pytest.approx(10.0)


class TestOrderTopDistinct:
    def test_order_by_asc_desc(self, db):
        asc = db.execute("SELECT id FROM t ORDER BY val").rows
        desc = db.execute("SELECT id FROM t ORDER BY val DESC").rows
        assert asc != desc
        # NULL sorts first ascending (our canonical order)
        assert asc[0] == (4,)

    def test_order_by_expression(self, db):
        rows = db.execute("SELECT id FROM t WHERE val IS NOT NULL ORDER BY -val").rows
        assert rows == [(3,), (2,), (1,)]

    def test_top(self, db):
        assert len(db.execute("SELECT TOP 2 id FROM t ORDER BY id").rows) == 2

    def test_top_percent(self, db):
        assert len(db.execute("SELECT TOP 50 PERCENT id FROM t").rows) == 2

    def test_distinct(self, db):
        assert len(db.execute("SELECT DISTINCT grp FROM t").rows) == 2


class TestSubqueries:
    def test_in_subquery(self, db):
        rows = db.execute(
            "SELECT id FROM t WHERE id IN (SELECT id FROM u)"
        ).rows
        assert sorted(rows) == [(1,), (3,)]

    def test_exists_correlated(self, db):
        rows = db.execute(
            "SELECT id FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)"
        ).rows
        assert sorted(rows) == [(1,), (3,)]

    def test_scalar_subquery(self, db):
        rows = db.execute(
            "SELECT id FROM t WHERE val = (SELECT max(val) FROM t)"
        ).rows
        assert rows == [(3,)]

    def test_scalar_subquery_multiple_rows_raises(self, db):
        with pytest.raises(EngineError):
            db.execute("SELECT (SELECT id FROM t) FROM u")


class TestScalarFunctions:
    def test_numeric_functions(self, db):
        row = db.execute(
            "SELECT abs(-3), round(2.7), floor(2.7), ceiling(2.1), power(2, 3), sqrt(9)"
        ).rows[0]
        assert row == (3, 3, 2, 3, 8, 3.0)

    def test_string_functions(self, db):
        row = db.execute("SELECT upper('ab'), lower('AB'), len('abc')").rows[0]
        assert row == ("AB", "ab", 3)

    def test_isnull_coalesce(self, db):
        row = db.execute("SELECT isnull(NULL, 5), coalesce(NULL, NULL, 7)").rows[0]
        assert row == (5, 7)

    def test_unknown_function_raises(self, db):
        with pytest.raises(EngineError, match="unknown function"):
            db.execute("SELECT frobnicate(1) FROM t")

    def test_division_by_zero_raises(self, db):
        with pytest.raises(EngineError, match="division by zero"):
            db.execute("SELECT 1 / 0")

    def test_integer_division(self, db):
        assert db.execute("SELECT 7 / 2").rows == [(3,)]

    def test_case_expression(self, db):
        rows = db.execute(
            "SELECT id, CASE WHEN val >= 20 THEN 'big' ELSE 'small' END "
            "FROM t WHERE val IS NOT NULL ORDER BY id"
        ).rows
        assert rows == [(1, "small"), (2, "big"), (3, "big")]

    def test_cast(self, db):
        assert db.execute("SELECT CAST('12' AS int)").rows == [(12,)]
        assert db.execute("SELECT CAST(1 AS varchar(5))").rows == [("1",)]


class TestStatsAndCost:
    def test_rows_scanned_counted(self, db):
        result = db.execute("SELECT id FROM t")
        assert result.stats.rows_scanned == 4
        assert result.stats.statements == 1
        assert result.stats.rows_returned == 4

    def test_execute_many_merges_stats(self, db):
        _, total = db.execute_many(
            ["SELECT id FROM t", "SELECT id FROM u"]
        )
        assert total.statements == 2
        assert total.rows_scanned == 7

    def test_cost_model(self):
        model = CostModel(statement_overhead=100.0, scan_cost=1.0, return_cost=2.0)
        stats = ExecStats(statements=2, rows_scanned=10, rows_returned=3)
        assert model.cost(stats) == 2 * 100 + 10 + 6

    def test_compare_workloads(self):
        original = ExecStats(statements=100, rows_scanned=1000, rows_returned=100)
        rewritten = ExecStats(statements=2, rows_scanned=1000, rows_returned=100)
        comparison = compare_workloads(original, rewritten)
        assert comparison.statement_reduction == 50.0
        assert comparison.speedup > 10

    def test_union(self, db):
        rows = db.execute(
            "SELECT id FROM t WHERE id = 1 UNION SELECT id FROM u WHERE id = 9"
        ).rows
        assert sorted(rows) == [(1,), (9,)]

    def test_union_dedupes_union_all_keeps(self, db):
        union = db.execute("SELECT id FROM u UNION SELECT id FROM u").rows
        union_all = db.execute("SELECT id FROM u UNION ALL SELECT id FROM u").rows
        assert len(union) == 3
        assert len(union_all) == 6

    def test_variable_raises(self, db):
        with pytest.raises(EngineError, match="unbound variable"):
            db.execute("SELECT id FROM t WHERE id = @x")
