"""Unit tests for skeletonization, templates and fingerprints."""

import pytest

from repro.skeleton import (
    build_clause_texts,
    build_template,
    normalize_case,
    pattern_fingerprint,
    skeletonize_statement,
    template_fingerprint,
)
from repro.sqlparser import ast, format_sql, parse


class TestSkeletonize:
    def test_example8_from_the_paper(self):
        """Section 4.1.2, Example 8: both queries share one skeleton."""
        q1 = parse("SELECT a, b FROM T WHERE a = 0 AND b >= 3")
        q2 = parse("SELECT a, b FROM T WHERE a = 10 AND b >= 5")
        s1 = skeletonize_statement(q1)
        s2 = skeletonize_statement(q2)
        assert s1 == s2
        assert format_sql(s1) == (
            "SELECT a, b FROM T WHERE a = <num> AND b >= <num>"
        )

    def test_string_and_null_placeholders(self):
        skeleton = skeletonize_statement(
            parse("SELECT a FROM t WHERE b = 'x' AND c = NULL")
        )
        text = format_sql(skeleton)
        assert "<str>" in text
        assert "<null>" in text

    def test_variables_kept_by_default(self):
        skeleton = skeletonize_statement(parse("SELECT a FROM t WHERE b = @ra"))
        assert "@ra" in format_sql(skeleton)

    def test_variables_folded_on_request(self):
        skeleton = skeletonize_statement(
            parse("SELECT a FROM t WHERE b = @ra"), fold_variables=True
        )
        assert "<var>" in format_sql(skeleton)

    def test_skeleton_is_idempotent(self):
        tree = parse("SELECT a FROM t WHERE b = 5")
        once = skeletonize_statement(tree)
        twice = skeletonize_statement(once)
        assert once == twice

    def test_constants_in_subqueries_are_folded(self):
        skeleton = skeletonize_statement(
            parse("SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 7)")
        )
        assert "7" not in format_sql(skeleton)


class TestNormalizeCase:
    def test_identifiers_lowercased(self):
        tree = normalize_case(parse("SELECT Name FROM Employees E WHERE E.Dept = 'X'"))
        text = format_sql(tree)  # type: ignore[arg-type]
        assert "name" in text and "employees" in text
        assert "Name" not in text

    def test_string_literals_keep_case(self):
        tree = normalize_case(parse("SELECT a FROM t WHERE b = 'MiXeD'"))
        assert "'MiXeD'" in format_sql(tree)  # type: ignore[arg-type]


class TestTemplates:
    def test_case_insensitive_equality(self):
        t1 = build_template(parse("SELECT Name FROM Employee WHERE id = 1"))
        t2 = build_template(parse("select name from EMPLOYEE where ID = 2"))
        assert t1 == t2
        assert template_fingerprint(t1) == template_fingerprint(t2)

    def test_different_select_means_different_template(self):
        t1 = build_template(parse("SELECT a FROM t WHERE id = 1"))
        t2 = build_template(parse("SELECT b FROM t WHERE id = 1"))
        assert t1 != t2

    def test_order_by_separates_templates_by_default(self):
        t1 = build_template(parse("SELECT a FROM t WHERE id = 1 ORDER BY a"))
        t2 = build_template(parse("SELECT a FROM t WHERE id = 1"))
        assert t1 != t2

    def test_strict_triple_ignores_order_by(self):
        t1 = build_template(
            parse("SELECT a FROM t WHERE id = 1 ORDER BY a"), strict_triple=True
        )
        t2 = build_template(parse("SELECT a FROM t WHERE id = 1"), strict_triple=True)
        assert t1 == t2

    def test_triple_accessor(self):
        template = build_template(parse("SELECT a FROM t WHERE id = 1"))
        sfc, swc, ssc = template.triple()
        assert (sfc, swc, ssc) == ("t", "id = <num>", "a")

    def test_skeleton_sql_readable(self):
        template = build_template(parse("SELECT a FROM t WHERE id = 5"))
        assert template.skeleton_sql == "SELECT a FROM t WHERE id = <num>"

    def test_no_where_clause(self):
        template = build_template(parse("SELECT a FROM t"))
        assert template.swc == ""

    def test_union_shapes_do_not_collapse(self):
        t1 = build_template(parse("SELECT a FROM t UNION SELECT b FROM u"))
        t2 = build_template(parse("SELECT a FROM t"))
        assert t1 != t2


class TestClauseTexts:
    def test_clause_texts_preserve_constants(self):
        texts = build_clause_texts(parse("SELECT Name FROM T WHERE Id = 42"))
        assert texts.sc == "name"
        assert texts.fc == "t"
        assert texts.wc == "id = 42"

    def test_different_constants_differ_in_wc_only(self):
        a = build_clause_texts(parse("SELECT name FROM t WHERE id = 1"))
        b = build_clause_texts(parse("SELECT name FROM t WHERE id = 2"))
        assert a.sc == b.sc and a.fc == b.fc and a.wc != b.wc


class TestFingerprints:
    def test_fingerprint_is_stable(self):
        template = build_template(parse("SELECT a FROM t WHERE id = 1"))
        assert template_fingerprint(template) == template_fingerprint(template)

    def test_fingerprint_distinguishes_templates(self):
        t1 = build_template(parse("SELECT a FROM t WHERE id = 1"))
        t2 = build_template(parse("SELECT a FROM u WHERE id = 1"))
        assert template_fingerprint(t1) != template_fingerprint(t2)

    def test_pattern_fingerprint_depends_on_order(self):
        t1 = build_template(parse("SELECT a FROM t"))
        t2 = build_template(parse("SELECT b FROM t"))
        assert pattern_fingerprint([t1, t2]) != pattern_fingerprint([t2, t1])
