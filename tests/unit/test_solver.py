"""Unit tests for the solving stage (Section 5.5)."""

import pytest

from repro.antipatterns import DetectionContext, run_detectors
from repro.antipatterns.types import AntipatternInstance, DW_STIFLE
from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log
from repro.rewrite import remove, solve

KEYS = frozenset({"empid", "id", "objid"})


def prepare(statements, user="u"):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=float(i) * 0.1, user=user)
        for i, sql in enumerate(statements)
    )
    stage = parse_log(log)
    blocks = build_blocks(stage.queries)
    instances = run_detectors(blocks, DetectionContext(key_columns=KEYS))
    return stage.parsed_log, instances


class TestSolve:
    def test_dw_run_collapses_to_one_statement(self):
        log, instances = prepare(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(4)]
        )
        result = solve(log, instances)
        assert len(result.log) == 1
        assert "IN (0, 1, 2, 3)" in result.log[0].sql
        assert result.queries_removed == 3

    def test_rewrite_placed_at_first_position(self):
        log, instances = prepare(
            ["SELECT x FROM pre WHERE k > 0"]
            + [f"SELECT name FROM e WHERE id = {i}" for i in range(3)]
            + ["SELECT y FROM post WHERE k > 0"]
        )
        result = solve(log, instances)
        statements = result.log.statements()
        assert len(statements) == 3
        assert statements[0].startswith("SELECT x")
        assert "IN (" in statements[1]
        assert statements[2].startswith("SELECT y")

    def test_solved_counts(self):
        log, instances = prepare(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(3)]
            + ["SELECT * FROM bugs WHERE a = NULL"],
        )
        result = solve(log, instances)
        counts = result.solved_counts()
        assert counts["DW-Stifle"] == 1
        assert counts["SNC"] == 1

    def test_snc_rewrite_in_place(self):
        log, instances = prepare(["SELECT * FROM bugs WHERE a = NULL"])
        result = solve(log, instances)
        assert len(result.log) == 1
        assert result.log[0].sql.endswith("a IS NULL")
        assert result.queries_removed == 0

    def test_unsolvable_cth_left_in_log(self):
        log, instances = prepare(
            [
                "SELECT E.Id FROM e E WHERE E.department = 'x'",
                "SELECT name FROM e WHERE id = 12",
            ]
        )
        # the pair is a CTH candidate (not solvable); too short for a stifle
        result = solve(log, instances)
        assert len(result.log) == 2
        assert len(result.unsolvable) == 1

    def test_conflicting_instances_first_wins(self):
        log, instances = prepare(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(3)]
        )
        # fabricate an overlapping later instance over the same queries
        stage_queries = parse_log(log).queries
        overlap = AntipatternInstance(
            label=DW_STIFLE, queries=tuple(stage_queries[1:]), solvable=True
        )
        result = solve(log, list(instances) + [overlap])
        assert len(result.solved) == 1
        assert len(result.skipped_conflicts) == 1

    def test_timestamps_of_kept_records_unchanged(self):
        log, instances = prepare(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(3)]
        )
        result = solve(log, instances)
        assert result.log[0].timestamp == log[0].timestamp

    def test_no_instances_is_identity(self):
        log, _ = prepare(["SELECT a FROM t WHERE x > 0"])
        result = solve(log, [])
        assert result.log == log

    def test_clean_log_reparses(self):
        log, instances = prepare(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(4)]
            + ["SELECT * FROM bugs WHERE a = NULL"]
        )
        result = solve(log, instances)
        stage = parse_log(result.log)
        assert not stage.syntax_errors


class TestRemove:
    def test_remove_drops_all_instance_queries(self):
        log, instances = prepare(
            ["SELECT keepme FROM t WHERE x > 0"]
            + [f"SELECT name FROM e WHERE id = {i}" for i in range(3)]
        )
        removed = remove(log, instances)
        assert removed.statements() == ["SELECT keepme FROM t WHERE x > 0"]

    def test_removal_smaller_than_clean(self):
        log, instances = prepare(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(4)]
        )
        clean = solve(log, instances).log
        removal = remove(log, instances)
        assert len(removal) < len(clean)
