"""Unit tests for the statistics/overview rendering (Table 5 shape)."""

import pytest

from repro.antipatterns.types import AntipatternInstance
from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log
from repro.pipeline.statistics import AntipatternCensus, Overview, census_by_label


class TestOverview:
    def test_percent_of_zero_original(self):
        assert Overview().percent(5) == 0.0

    def test_percent(self):
        overview = Overview(original_size=200)
        assert overview.percent(50) == 25.0

    def test_rows_always_include_core_properties(self):
        rows = dict(Overview(original_size=10).rows())
        assert "Size of original query log" in rows
        assert "Count of distinct candidate CTH" in rows

    def test_rows_include_present_labels_only(self):
        overview = Overview(
            original_size=10,
            antipatterns={"DW-Stifle": AntipatternCensus(distinct=1, queries=4)},
        )
        names = [name for name, _ in overview.rows()]
        assert any("DW-Stifle" in name for name in names)
        assert not any("DS-Stifle" in name for name in names)

    def test_format_alignment(self):
        text = Overview(original_size=10).format()
        lines = text.splitlines()
        assert len(lines) > 5
        assert all(lines[0].index("  ") or True for _ in lines)

    def test_thousands_separator(self):
        overview = Overview(original_size=1_234_567, final_size=1_000_000)
        assert "1,234,567" in overview.format()


class TestCensusByLabel:
    def _instances(self):
        log = QueryLog(
            LogRecord(seq=i, sql=f"SELECT a FROM t WHERE id = {i}",
                      timestamp=i * 0.1, user="u")
            for i in range(4)
        )
        queries = parse_log(log).queries
        first = AntipatternInstance(
            label="X", queries=tuple(queries[:2]), solvable=True
        )
        second = AntipatternInstance(
            label="X", queries=tuple(queries[2:]), solvable=True
        )
        third = AntipatternInstance(
            label="Y", queries=(queries[0],), solvable=False
        )
        return [first, second, third]

    def test_counts(self):
        census = census_by_label(self._instances())
        assert census["X"].instances == 2
        assert census["X"].queries == 4
        assert census["X"].distinct == 1  # same unit
        assert census["Y"].instances == 1

    def test_empty(self):
        assert census_by_label([]) == {}
