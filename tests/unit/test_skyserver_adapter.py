"""Unit tests for the real-SkyServer log-export adapter."""

import pytest

from repro.log.skyserver import SkyServerFormatError, read_skyserver_csv
from repro.pipeline import CleaningPipeline


FULL_EXPORT = """yy,mm,dd,hh,mi,ss,seq,theTime,logID,clientIP,requestor,server,dbname,access,elapsed,busy,rows,statement,error,errorMessage
2007,6,13,12,18,46,1,2007-06-13 12:18:46,77,130.1.2.3,,SkyServer,BESTDR5,Web,0.1,0.05,42,"SELECT name, type FROM DBObjects WHERE type='U' ORDER BY name",0,
2007,6,13,12,19,13,2,2007-06-13 12:19:13,77,130.1.2.3,,SkyServer,BESTDR5,Web,0.1,0.02,1,"SELECT description FROM DBObjects WHERE name='Galaxy'",0,
"""

MINIMAL_EXPORT = """yy,mm,dd,hh,mi,ss,statement
3,1,15,8,30,0,SELECT objid FROM photoprimary WHERE objid = 5
3,1,15,8,30,2,SELECT objid FROM photoprimary WHERE objid = 6
"""


class TestFullExport:
    def test_reads_all_rows(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(FULL_EXPORT)
        log = read_skyserver_csv(path)
        assert len(log) == 2
        assert log[0].sql.startswith("SELECT name, type")

    def test_the_time_parsed(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(FULL_EXPORT)
        log = read_skyserver_csv(path)
        # Table 9's 27-second think time must be reconstructed
        assert log[1].timestamp - log[0].timestamp == pytest.approx(27.0)

    def test_ip_becomes_user_when_no_requestor(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(FULL_EXPORT)
        log = read_skyserver_csv(path)
        assert log[0].user == "130.1.2.3"
        assert log[0].ip == "130.1.2.3"

    def test_rows_and_session(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(FULL_EXPORT)
        log = read_skyserver_csv(path)
        assert log[0].rows == 42
        assert log[0].session == "77"


class TestMinimalExport:
    def test_time_assembled_from_parts(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(MINIMAL_EXPORT)
        log = read_skyserver_csv(path)
        assert len(log) == 2
        assert log[1].timestamp - log[0].timestamp == pytest.approx(2.0)

    def test_two_digit_year_normalised(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(MINIMAL_EXPORT)
        log = read_skyserver_csv(path)
        import datetime

        year = datetime.datetime.fromtimestamp(
            log[0].timestamp, tz=datetime.timezone.utc
        ).year
        assert year == 2003

    def test_pipeline_runs_on_adapter_output(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(MINIMAL_EXPORT)
        result = CleaningPipeline().run(read_skyserver_csv(path))
        assert len(result.parse_stage.queries) == 2


class TestFailureModes:
    def test_missing_statement_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(SkyServerFormatError, match="statement"):
            read_skyserver_csv(path)

    def test_missing_time_information(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("statement\nSELECT 1\n")
        with pytest.raises(SkyServerFormatError, match="time"):
            read_skyserver_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SkyServerFormatError):
            read_skyserver_csv(path)

    def test_blank_statements_skipped(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "yy,mm,dd,statement\n2003,1,1,SELECT 1\n2003,1,1,\n"
        )
        assert len(read_skyserver_csv(path)) == 1

    def test_garbage_rows_value_tolerated(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "yy,mm,dd,rows,statement\n2003,1,1,n/a,SELECT 1\n"
        )
        assert read_skyserver_csv(path)[0].rows is None
