"""Unit tests for Stifle detection (Definitions 11–14)."""

import pytest

from repro.antipatterns import (
    DF_STIFLE,
    DS_STIFLE,
    DW_STIFLE,
    DetectionContext,
    StifleDetector,
    classify_pair,
    has_stifle_shape,
)
from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log

KEYS = frozenset({"empid", "id", "objid"})


def blocks_for(statements, user="u", spacing=0.2):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=i * spacing, user=user)
        for i, sql in enumerate(statements)
    )
    return build_blocks(parse_log(log).queries)


def detect(statements, key_columns=KEYS, **kwargs):
    context = DetectionContext(key_columns=key_columns, **kwargs)
    return StifleDetector().detect(blocks_for(statements), context)


class TestStifleShape:
    def _query(self, sql):
        return blocks_for([sql])[0].queries[0]

    def test_equality_on_key_qualifies(self):
        query = self._query("SELECT name FROM e WHERE empId = 8")
        assert has_stifle_shape(query, DetectionContext(key_columns=KEYS))

    def test_non_key_column_fails(self):
        query = self._query("SELECT name FROM e WHERE salary = 8")
        assert not has_stifle_shape(query, DetectionContext(key_columns=KEYS))

    def test_non_key_passes_without_schema(self):
        """Definition 11's third axiom is waived without a schema."""
        query = self._query("SELECT name FROM e WHERE salary = 8")
        assert has_stifle_shape(query, DetectionContext(key_columns=None))

    def test_two_predicates_fail(self):
        query = self._query("SELECT name FROM e WHERE empId = 8 AND x = 1")
        assert not has_stifle_shape(query, DetectionContext(key_columns=KEYS))

    def test_range_fails(self):
        query = self._query("SELECT name FROM e WHERE empId > 8")
        assert not has_stifle_shape(query, DetectionContext(key_columns=KEYS))


class TestClassifyPair:
    def _pair(self, sql1, sql2):
        block = blocks_for([sql1, sql2])[0]
        return block.queries[0], block.queries[1]

    def test_dw_pair(self):
        pair = self._pair(
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT name FROM Employee WHERE empId = 1",
        )
        assert classify_pair(*pair) == DW_STIFLE

    def test_ds_pair_example_11(self):
        pair = self._pair(
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT address, phone FROM Employee WHERE empId = 8",
        )
        assert classify_pair(*pair) == DS_STIFLE

    def test_df_pair_example_13(self):
        pair = self._pair(
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT address FROM EmployeeInfo WHERE empId = 8",
        )
        assert classify_pair(*pair) == DF_STIFLE

    def test_identical_queries_are_no_pair(self):
        pair = self._pair(
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT name FROM Employee WHERE empId = 8",
        )
        assert classify_pair(*pair) is None

    def test_everything_different_is_no_pair(self):
        pair = self._pair(
            "SELECT name FROM Employee WHERE empId = 8",
            "SELECT address FROM EmployeeInfo WHERE empId = 9",
        )
        assert classify_pair(*pair) is None


class TestDetection:
    def test_dw_run_detected(self):
        instances = detect(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(4)]
        )
        assert len(instances) == 1
        assert instances[0].label == DW_STIFLE
        assert len(instances[0].queries) == 4
        assert instances[0].solvable

    def test_ds_run_detected(self):
        instances = detect(
            [
                "SELECT name FROM e WHERE id = 8",
                "SELECT address FROM e WHERE id = 8",
                "SELECT phone FROM e WHERE id = 8",
            ]
        )
        assert [i.label for i in instances] == [DS_STIFLE]
        assert len(instances[0].queries) == 3

    def test_df_run_detected(self):
        instances = detect(
            [
                "SELECT name FROM e WHERE id = 8",
                "SELECT address FROM einfo WHERE id = 8",
            ]
        )
        assert [i.label for i in instances] == [DF_STIFLE]

    def test_single_query_is_no_stifle(self):
        assert detect(["SELECT name FROM e WHERE id = 8"]) == []

    def test_runs_do_not_mix_classes(self):
        instances = detect(
            [
                "SELECT name FROM e WHERE id = 1",
                "SELECT name FROM e WHERE id = 2",
                "SELECT address FROM e WHERE id = 2",
            ]
        )
        assert [i.label for i in instances] == [DW_STIFLE]
        assert len(instances[0].queries) == 2

    def test_consecutive_runs_of_different_classes(self):
        instances = detect(
            [
                "SELECT name FROM e WHERE id = 1",
                "SELECT name FROM e WHERE id = 2",
                "SELECT name FROM e WHERE id = 3",
                "SELECT a FROM x WHERE objid = 7",
                "SELECT b FROM x WHERE objid = 7",
            ]
        )
        assert [i.label for i in instances] == [DW_STIFLE, DS_STIFLE]

    def test_min_run_length_config(self):
        instances = detect(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(2)],
            min_run_length=3,
        )
        assert instances == []

    def test_non_key_filter_breaks_run(self):
        instances = detect(
            [
                "SELECT name FROM e WHERE salary = 1",
                "SELECT name FROM e WHERE salary = 2",
            ]
        )
        assert instances == []

    def test_users_do_not_mix(self):
        log = QueryLog(
            [
                LogRecord(0, "SELECT name FROM e WHERE id = 1", 0.0, "u1"),
                LogRecord(1, "SELECT name FROM e WHERE id = 2", 0.1, "u2"),
            ]
        )
        blocks = build_blocks(parse_log(log).queries)
        instances = StifleDetector().detect(
            blocks, DetectionContext(key_columns=KEYS)
        )
        assert instances == []

    def test_details_carry_filter_column(self):
        instances = detect(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(2)]
        )
        assert instances[0].details["filter_column"].lower() == "id"
        assert instances[0].details["run_length"] == 2

    def test_unit_is_minimal_period(self):
        dw = detect([f"SELECT name FROM e WHERE id = {i}" for i in range(4)])[0]
        assert len(dw.unit) == 1
        ds_pairs = detect(
            [
                "SELECT a FROM e WHERE id = 1",
                "SELECT b FROM e WHERE id = 1",
                "SELECT a FROM e WHERE id = 2",
                "SELECT b FROM e WHERE id = 2",
            ]
        )
        # two DS runs (one per object id); each unit is the (A, B) pair
        assert all(i.label == DS_STIFLE for i in ds_pairs)
