"""Unit tests for the run-scoped template interner."""

import pickle

import pytest

from repro.skeleton import TemplateInterner


class TestDenseIds:
    def test_first_sight_assigns_next_dense_id(self):
        interner = TemplateInterner()
        assert interner.intern("aa") == 0
        assert interner.intern("bb") == 1
        assert interner.intern("cc") == 2

    def test_intern_is_idempotent(self):
        interner = TemplateInterner()
        first = interner.intern("aa")
        interner.intern("bb")
        assert interner.intern("aa") == first
        assert len(interner) == 2

    def test_ids_cover_exactly_zero_to_n_minus_one(self):
        interner = TemplateInterner()
        fingerprints = [f"fp{i:02d}" for i in range(25)]
        ids = [interner.intern(fp) for fp in fingerprints + fingerprints]
        assert sorted(set(ids)) == list(range(25))

    def test_constructor_interns_in_order(self):
        interner = TemplateInterner(["x", "y", "x", "z"])
        assert interner.fingerprints() == ("x", "y", "z")
        assert interner.id_of("z") == 2


class TestLookups:
    def test_round_trip(self):
        interner = TemplateInterner()
        for fingerprint in ("aa", "bb", "cc"):
            interned = interner.intern(fingerprint)
            assert interner.fingerprint(interned) == fingerprint
            assert interner.id_of(fingerprint) == interned

    def test_id_of_never_assigns(self):
        interner = TemplateInterner()
        assert interner.id_of("ghost") is None
        assert len(interner) == 0

    def test_unknown_id_raises(self):
        interner = TemplateInterner(["aa"])
        with pytest.raises(IndexError):
            interner.fingerprint(5)
        with pytest.raises(IndexError):
            interner.fingerprint(-1)

    def test_contains(self):
        interner = TemplateInterner(["aa"])
        assert "aa" in interner
        assert "bb" not in interner

    def test_resolve_unit(self):
        interner = TemplateInterner(["aa", "bb", "cc"])
        assert interner.resolve_unit((2, 0, 2)) == ("cc", "aa", "cc")
        assert interner.resolve_unit(()) == ()


class TestEquality:
    def test_equal_iff_same_dictionary_in_same_order(self):
        assert TemplateInterner(["a", "b"]) == TemplateInterner(["a", "b"])
        assert TemplateInterner(["a", "b"]) != TemplateInterner(["b", "a"])
        assert TemplateInterner() != TemplateInterner(["a"])

    def test_not_equal_to_other_types(self):
        assert TemplateInterner(["a"]) != ["a"]


class TestPickling:
    def test_round_trip_preserves_ids(self):
        interner = TemplateInterner([f"fp{i}" for i in range(10)])
        clone = pickle.loads(pickle.dumps(interner))
        assert clone == interner
        assert clone.fingerprints() == interner.fingerprints()
        # The forward dict must be rebuilt, not just the list.
        assert clone.id_of("fp7") == 7
        assert clone.intern("fresh") == 10


class TestMerge:
    def test_merge_returns_complete_remap(self):
        parent = TemplateInterner(["a", "b"])
        shard = TemplateInterner(["b", "c", "a"])
        remap = parent.merge(shard)
        # Every shard id is remapped, known fingerprints keep their
        # parent id, new ones get the next dense ids.
        assert remap == {0: 1, 1: 2, 2: 0}
        assert parent.fingerprints() == ("a", "b", "c")

    def test_merge_empty_shard_is_noop(self):
        parent = TemplateInterner(["a"])
        assert parent.merge(TemplateInterner()) == {}
        assert parent.fingerprints() == ("a",)

    def test_shard_fold_matches_sequential_interning(self):
        """Folding shard interners in shard order must reproduce the
        dictionary a single interner builds over the concatenated
        stream — the parallel executor's merge-stage contract."""
        stream = ["q1", "q2", "q1", "q3", "q2", "q4", "q5", "q3"]
        shards = [stream[:3], stream[3:6], stream[6:]]

        sequential = TemplateInterner(stream)
        folded = TemplateInterner()
        for shard_stream in shards:
            shard = TemplateInterner(shard_stream)
            remap = folded.merge(shard)
            for local_id, fingerprint in enumerate(shard.fingerprints()):
                assert folded.fingerprint(remap[local_id]) == fingerprint
        assert folded == sequential
