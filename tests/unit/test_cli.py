"""Unit tests for the sqlog-clean CLI."""

import json

import pytest

from repro.cli.main import main
from repro import open_log
from repro.obs.metrics import EXECUTOR_DEPENDENT_COUNTERS


def read_log(path):
    return open_log(path).read()


@pytest.fixture()
def generated_csv(tmp_path):
    path = tmp_path / "log.csv"
    assert main(["generate", str(path), "--seed", "3", "--scale", "0.03"]) == 0
    return path


class TestGenerate:
    def test_generate_csv(self, tmp_path, capsys):
        path = tmp_path / "log.csv"
        assert main(["generate", str(path), "--scale", "0.03"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert len(read_log(path)) > 50

    def test_generate_jsonl(self, tmp_path):
        path = tmp_path / "log.jsonl"
        assert main(["generate", str(path), "--scale", "0.03"]) == 0
        assert len(read_log(path)) > 50


class TestClean:
    def test_clean_prints_overview(self, generated_csv, capsys):
        assert main(["clean", str(generated_csv), "--skyserver-schema"]) == 0
        out = capsys.readouterr().out
        assert "Size of original query log" in out

    def test_clean_writes_output(self, generated_csv, tmp_path, capsys):
        out_path = tmp_path / "clean.csv"
        assert (
            main(
                [
                    "clean",
                    str(generated_csv),
                    "--skyserver-schema",
                    "-o",
                    str(out_path),
                ]
            )
            == 0
        )
        cleaned = read_log(out_path)
        original = read_log(generated_csv)
        assert 0 < len(cleaned) <= len(original)


class TestCleanObservability:
    def test_metrics_json_written(self, generated_csv, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "clean",
                    str(generated_csv),
                    "--skyserver-schema",
                    "--metrics-json",
                    str(metrics_path),
                ]
            )
            == 0
        )
        assert "wrote per-stage metrics" in capsys.readouterr().out
        metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
        stages = metrics["stages"]
        assert set(stages) >= {"dedup", "parse", "mine", "detect", "solve"}
        assert stages["dedup"]["counters"]["records_in"] == len(
            read_log(generated_csv)
        )
        assert "conservation_violations" not in metrics

    def test_metrics_json_covers_every_mode(self, generated_csv, tmp_path):
        ledgers = {}
        for name, flags in {
            "batch": [],
            "streaming": ["--streaming"],
            "parallel": ["--parallel", "--workers", "2"],
        }.items():
            path = tmp_path / f"{name}.json"
            assert (
                main(
                    [
                        "clean",
                        str(generated_csv),
                        "--skyserver-schema",
                        *flags,
                        "--metrics-json",
                        str(path),
                    ]
                )
                == 0
            )
            stages = json.loads(path.read_text(encoding="utf-8"))["stages"]
            # Executor-dependent counters (parse-cache traffic, interner
            # size) legitimately differ across modes — the parallel run
            # pays one cache miss per template per shard where batch
            # pays one total.  The cross-mode contract is comparable():
            # everything else must match exactly.
            ledgers[name] = {
                stage: {
                    counter: value
                    for counter, value in stages[stage]["counters"].items()
                    if counter
                    not in EXECUTOR_DEPENDENT_COUNTERS.get(stage, frozenset())
                }
                for stage in ("dedup", "parse", "solve")
            }
        assert ledgers["batch"] == ledgers["streaming"] == ledgers["parallel"]

    def test_metrics_json_creates_parent_dirs(self, generated_csv, tmp_path):
        metrics_path = tmp_path / "nested" / "deeper" / "metrics.json"
        assert (
            main(
                [
                    "clean",
                    str(generated_csv),
                    "--skyserver-schema",
                    "--metrics-json",
                    str(metrics_path),
                ]
            )
            == 0
        )
        assert "stages" in json.loads(metrics_path.read_text(encoding="utf-8"))

    def test_trace_streams_jsonl_to_stderr(self, generated_csv, capsys):
        assert (
            main(["clean", str(generated_csv), "--skyserver-schema", "--trace"])
            == 0
        )
        events = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.strip()
        ]
        spans = [e for e in events if e["event"] == "span"]
        assert {"dedup", "parse", "detect", "solve"} <= {
            e["stage"] for e in spans
        }
        assert events[-1]["event"] == "metrics"
        assert events[-1]["stages"]["dedup"]["counters"]["records_in"] > 0


@pytest.fixture()
def poisoned_csv(generated_csv):
    # three failure classes: an unreadable row (io), a NaN timestamp
    # (validate stage) and garbage SQL (parse stage)
    with open(generated_csv, "a", encoding="utf-8", newline="") as handle:
        handle.write("9001,nan,u1,,,,SELECT name FROM Employee\n")
        handle.write("9002,notatime,u1,,,,SELECT name FROM Employee\n")
        handle.write("9003,50.0,u1,,,,SELEKT garbage !!\n")
    return generated_csv


class TestCleanErrorPolicy:
    def test_strict_raises_on_unreadable_row(self, poisoned_csv):
        with pytest.raises(ValueError, match="malformed row"):
            main(["clean", str(poisoned_csv), "--skyserver-schema"])

    def test_quarantine_cleans_and_reports(self, poisoned_csv, tmp_path, capsys):
        quarantine_path = tmp_path / "audit" / "quarantine.json"
        assert (
            main(
                [
                    "clean",
                    str(poisoned_csv),
                    "--skyserver-schema",
                    "--error-policy",
                    "quarantine",
                    "--quarantine-json",
                    str(quarantine_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "quarantined" in out and "records" in out
        payload = json.loads(quarantine_path.read_text(encoding="utf-8"))
        assert payload["error_policy"] == "quarantine"
        reasons = payload["by_reason"]
        assert reasons["unreadable_record"] == 1
        assert reasons["invalid_timestamp"] == 1
        # ours plus whatever syntax errors the generator itself planted
        assert reasons["parse_error"] >= 1
        assert payload["count"] == sum(reasons.values())

    def test_lenient_cleans_without_capture(self, poisoned_csv, capsys):
        assert (
            main(
                [
                    "clean",
                    str(poisoned_csv),
                    "--skyserver-schema",
                    "--error-policy",
                    "lenient",
                ]
            )
            == 0
        )
        assert "quarantined" not in capsys.readouterr().out


class TestPatterns:
    def test_patterns_listing(self, generated_csv, capsys):
        assert (
            main(["patterns", str(generated_csv), "--skyserver-schema", "--top", "5"])
            == 0
        )
        out = capsys.readouterr().out
        assert "freq" in out
        assert len([l for l in out.splitlines() if l.strip()]) >= 3


class TestCluster:
    def test_cluster_comparison(self, generated_csv, capsys):
        assert (
            main(
                [
                    "cluster",
                    str(generated_csv),
                    "--skyserver-schema",
                    "--thresholds",
                    "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "raw" in out and "clean" in out and "removal" in out


class TestStreamingClean:
    def test_streaming_clean(self, generated_csv, tmp_path, capsys):
        out_path = tmp_path / "clean.csv"
        assert (
            main(
                [
                    "clean",
                    str(generated_csv),
                    "--skyserver-schema",
                    "--streaming",
                    "-o",
                    str(out_path),
                ]
            )
            == 0
        )
        assert "streamed" in capsys.readouterr().out
        assert out_path.exists()

    def test_streaming_matches_batch(self, generated_csv, tmp_path):
        batch_path = tmp_path / "batch.csv"
        stream_path = tmp_path / "stream.csv"
        main(["clean", str(generated_csv), "--skyserver-schema", "-o", str(batch_path)])
        main(
            [
                "clean",
                str(generated_csv),
                "--skyserver-schema",
                "--streaming",
                "-o",
                str(stream_path),
            ]
        )
        assert read_log(batch_path).statements() == read_log(stream_path).statements()


class TestConvert:
    def test_round_trip_chain(self, generated_csv, tmp_path, capsys):
        """csv -> columnar -> jsonl -> csv preserves every record."""
        store = tmp_path / "log.columnar"
        jsonl = tmp_path / "log.jsonl"
        back = tmp_path / "back.csv"
        assert main(["convert", str(generated_csv), str(store)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["convert", str(store), str(jsonl)]) == 0
        assert main(["convert", str(jsonl), str(back)]) == 0
        assert read_log(back) == read_log(generated_csv)

    def test_explicit_to_overrides_extension(self, generated_csv, tmp_path):
        odd = tmp_path / "log.dat"
        assert main(["convert", str(generated_csv), str(odd), "--to", "jsonl"]) == 0
        assert open_log(odd, format="jsonl").read() == read_log(generated_csv)

    def test_clean_reads_columnar_store(self, generated_csv, tmp_path, capsys):
        store = tmp_path / "log.columnar"
        out_path = tmp_path / "clean.jsonl"
        main(["convert", str(generated_csv), str(store)])
        capsys.readouterr()
        assert (
            main(
                [
                    "clean",
                    str(store),
                    "--skyserver-schema",
                    "--streaming",
                    "-o",
                    str(out_path),
                ]
            )
            == 0
        )
        batch_path = tmp_path / "batch.jsonl"
        main(
            ["clean", str(generated_csv), "--skyserver-schema", "-o", str(batch_path)]
        )
        assert read_log(out_path) == read_log(batch_path)


class TestCheckpointFlags:
    def test_checkpoint_and_resume_round_trip(self, generated_csv, tmp_path):
        direct = tmp_path / "direct.jsonl"
        resumed = tmp_path / "resumed.jsonl"
        ck = tmp_path / "ck"
        args = ["clean", str(generated_csv), "--skyserver-schema", "--streaming"]
        assert main(args + ["-o", str(direct)]) == 0
        assert main(args + ["--checkpoint-dir", str(ck), "-o", str(direct)]) == 0
        assert (ck / "state.json").exists()
        assert (
            main(
                args
                + ["--checkpoint-dir", str(ck), "--resume", "-o", str(resumed)]
            )
            == 0
        )
        assert resumed.read_bytes() == direct.read_bytes()

    def test_checkpoint_dir_requires_streaming(self, generated_csv, tmp_path, capsys):
        rc = main(
            [
                "clean",
                str(generated_csv),
                "--checkpoint-dir",
                str(tmp_path / "ck"),
            ]
        )
        assert rc == 2
        assert "--streaming" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, generated_csv, capsys):
        rc = main(["clean", str(generated_csv), "--streaming", "--resume"])
        assert rc == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_without_state_fails_cleanly(self, generated_csv, tmp_path, capsys):
        rc = main(
            [
                "clean",
                str(generated_csv),
                "--streaming",
                "--checkpoint-dir",
                str(tmp_path / "empty"),
                "--resume",
            ]
        )
        assert rc == 2
        assert "nothing to resume" in capsys.readouterr().err


class TestTraffic:
    def test_traffic_report(self, generated_csv, capsys):
        assert main(["traffic", str(generated_csv), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "queries:" in out
        assert "top users:" in out
        assert "top tables:" in out


class TestBots:
    def test_bots_listing(self, generated_csv, capsys):
        assert (
            main(["bots", str(generated_csv), "--skyserver-schema", "--top", "10"])
            == 0
        )
        out = capsys.readouterr().out
        assert "classified as bots" in out
        assert "BOT" in out

    def test_bots_baseline_mode(self, generated_csv, capsys):
        assert (
            main(
                [
                    "bots",
                    str(generated_csv),
                    "--skyserver-schema",
                    "--no-shape-features",
                ]
            )
            == 0
        )
        assert "users" in capsys.readouterr().out


class TestReport:
    def test_report_writes_csvs(self, generated_csv, tmp_path, capsys):
        out_dir = tmp_path / "report"
        assert (
            main(
                [
                    "report",
                    str(generated_csv),
                    "--skyserver-schema",
                    str(out_dir),
                ]
            )
            == 0
        )
        assert (out_dir / "overview.csv").exists()
        assert (out_dir / "patterns.csv").exists()


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
