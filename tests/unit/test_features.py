"""Unit tests for the predicate census (repro.skeleton.features)."""

import pytest

from repro.skeleton.features import (
    THETA_EQUALITY,
    THETA_IN,
    THETA_INEQUALITY,
    THETA_IS_NULL,
    THETA_LIKE,
    THETA_RANGE,
    count_predicates,
    filter_columns,
    is_key_filter,
    null_comparison_predicates,
    output_columns,
    predicates_of,
    referenced_tables,
    single_equality_filter,
)
from repro.sqlparser import parse_select


class TestPredicateCensus:
    def test_no_where_means_zero_predicates(self):
        assert count_predicates(parse_select("SELECT a FROM t")) == 0

    def test_single_equality(self):
        predicates = predicates_of(parse_select("SELECT a FROM t WHERE id = 5"))
        assert len(predicates) == 1
        assert predicates[0].theta == THETA_EQUALITY
        assert predicates[0].column.name == "id"
        assert predicates[0].value.value == "5"

    def test_reversed_equality_still_finds_column(self):
        predicate = predicates_of(parse_select("SELECT a FROM t WHERE 5 = id"))[0]
        assert predicate.column.name == "id"

    def test_conjunction_counts_both(self):
        assert (
            count_predicates(parse_select("SELECT a FROM t WHERE a = 1 AND b > 2"))
            == 2
        )

    def test_disjunction_counts_both(self):
        assert (
            count_predicates(parse_select("SELECT a FROM t WHERE a = 1 OR b = 2"))
            == 2
        )

    def test_not_descends(self):
        predicate = predicates_of(
            parse_select("SELECT a FROM t WHERE NOT a = 1")
        )[0]
        assert predicate.theta == THETA_EQUALITY

    @pytest.mark.parametrize(
        "sql,theta",
        [
            ("SELECT a FROM t WHERE a <> 1", THETA_INEQUALITY),
            ("SELECT a FROM t WHERE a < 1", THETA_RANGE),
            ("SELECT a FROM t WHERE a >= 1", THETA_RANGE),
            ("SELECT a FROM t WHERE a BETWEEN 1 AND 2", THETA_RANGE),
            ("SELECT a FROM t WHERE a IN (1, 2)", THETA_IN),
            ("SELECT a FROM t WHERE a LIKE 'x%'", THETA_LIKE),
            ("SELECT a FROM t WHERE a IS NULL", THETA_IS_NULL),
        ],
    )
    def test_theta_classification(self, sql, theta):
        assert predicates_of(parse_select(sql))[0].theta == theta

    def test_join_condition_in_where_has_no_column(self):
        predicate = predicates_of(
            parse_select("SELECT a FROM t, u WHERE t.id = u.id")
        )[0]
        assert predicate.column is None


class TestSingleEqualityFilter:
    def test_the_stifle_shape(self):
        predicate = single_equality_filter(
            parse_select("SELECT name FROM Employee WHERE empId = 8")
        )
        assert predicate is not None
        assert predicate.column.name == "empId"

    def test_two_predicates_do_not_qualify(self):
        assert (
            single_equality_filter(
                parse_select("SELECT a FROM t WHERE a = 1 AND b = 2")
            )
            is None
        )

    def test_range_does_not_qualify(self):
        assert (
            single_equality_filter(parse_select("SELECT a FROM t WHERE a > 1"))
            is None
        )

    def test_column_to_column_does_not_qualify(self):
        assert (
            single_equality_filter(
                parse_select("SELECT a FROM t, u WHERE t.id = u.id")
            )
            is None
        )


class TestOutputColumns:
    def test_plain_columns(self):
        assert output_columns(parse_select("SELECT a, B FROM t")) == {"a", "b"}

    def test_alias_wins(self):
        assert output_columns(parse_select("SELECT a AS x FROM t")) == {"x"}

    def test_star_is_wildcard(self):
        assert output_columns(parse_select("SELECT * FROM t")) == {"*"}

    def test_unnamed_expression_contributes_nothing(self):
        assert output_columns(parse_select("SELECT a + 1 FROM t")) == set()


class TestReferencedTables:
    def test_single_table(self):
        assert referenced_tables(parse_select("SELECT a FROM T")) == {"t"}

    def test_join_tables(self):
        tables = referenced_tables(
            parse_select("SELECT a FROM t JOIN u ON t.i = u.i")
        )
        assert tables == {"t", "u"}

    def test_function_table(self):
        tables = referenced_tables(
            parse_select("SELECT a FROM fGetNearbyObjEq(1,2,3) n, photoprimary p")
        )
        assert tables == {"fgetnearbyobjeq", "photoprimary"}

    def test_derived_table_descends(self):
        tables = referenced_tables(
            parse_select("SELECT a FROM (SELECT a FROM inner_t) s")
        )
        assert tables == {"inner_t"}


class TestNullComparisons:
    def test_equals_null_found(self):
        found = null_comparison_predicates(
            parse_select("SELECT * FROM bugs WHERE assigned_to = NULL")
        )
        assert len(found) == 1
        assert found[0].compares_null

    def test_not_equals_null_found(self):
        assert null_comparison_predicates(
            parse_select("SELECT * FROM bugs WHERE assigned_to <> NULL")
        )

    def test_is_null_is_fine(self):
        assert not null_comparison_predicates(
            parse_select("SELECT * FROM bugs WHERE assigned_to IS NULL")
        )

    def test_range_against_null_not_snc(self):
        assert not null_comparison_predicates(
            parse_select("SELECT * FROM bugs WHERE assigned_to > NULL")
        )


class TestKeyFilter:
    def test_key_check_with_schema(self):
        predicate = single_equality_filter(
            parse_select("SELECT a FROM t WHERE objid = 5")
        )
        assert is_key_filter(predicate, ["objid"])
        assert not is_key_filter(predicate, ["other"])

    def test_key_check_waived_without_schema(self):
        predicate = single_equality_filter(
            parse_select("SELECT a FROM t WHERE anything = 5")
        )
        assert is_key_filter(predicate, None)

    def test_key_check_is_case_insensitive(self):
        predicate = single_equality_filter(
            parse_select("SELECT a FROM t WHERE ObjID = 5")
        )
        assert is_key_filter(predicate, ["OBJID"])
