"""Unit tests for the streaming cleaner."""

import pytest

from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.pipeline import CleaningPipeline, ExecutionConfig, PipelineConfig
from repro.pipeline.streaming import StreamingCleaner

KEYS = frozenset({"empid", "id", "objid"})


def make_log(entries):
    return QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts, user) in enumerate(entries)
    )


def config(**execution):
    return PipelineConfig(
        detection=DetectionContext(key_columns=KEYS),
        execution=ExecutionConfig(mode="streaming", **execution),
    )


def stream(log, pipeline_config=None):
    cleaner = StreamingCleaner(pipeline_config or config())
    cleaned = cleaner.run(log)
    return cleaned, cleaner.stats


class TestStreamingBasics:
    def test_stifle_solved_in_stream(self):
        log = make_log(
            [(f"SELECT name FROM e WHERE id = {i}", i * 0.1, "u") for i in range(4)]
        )
        cleaned, stats = stream(log)
        assert len(cleaned) == 1
        assert "IN (0, 1, 2, 3)" in cleaned[0].sql
        assert stats.instances_solved == 1

    def test_duplicates_removed(self):
        log = make_log([("SELECT a FROM t", 0.0, "u"), ("SELECT a FROM t", 0.5, "u")])
        cleaned, stats = stream(log)
        assert stats.duplicates_removed == 1
        assert len(cleaned) == 1

    def test_parse_failures_counted(self):
        log = make_log(
            [("DROP TABLE x", 0.0, "u"), ("SELECT FROM", 1.0, "u"),
             ("SELECT a FROM t", 2.0, "u")]
        )
        cleaned, stats = stream(log)
        assert stats.non_select == 1
        assert stats.syntax_errors == 1
        assert len(cleaned) == 1

    def test_blocks_split_across_users(self):
        log = make_log(
            [("SELECT name FROM e WHERE id = 1", 0.0, "u1"),
             ("SELECT name FROM e WHERE id = 2", 0.1, "u2")]
        )
        cleaned, stats = stream(log)
        assert len(cleaned) == 2  # no cross-user stifle
        assert stats.blocks_closed == 2

    def test_idle_user_block_flushes_mid_stream(self):
        log = make_log(
            [("SELECT name FROM e WHERE id = 1", 0.0, "u1"),
             ("SELECT name FROM e WHERE id = 2", 0.2, "u1"),
             # another user keeps the stream alive far past u1's gap
             ("SELECT x FROM t WHERE k > 0", 10_000.0, "u2")]
        )
        cleaner = StreamingCleaner(config())
        emitted = list(cleaner.process(log))
        # u1's stifle was already solved when u2's record arrived
        assert any("IN (1, 2)" in record.sql for record in emitted)

    def test_records_out_counted_when_process_consumed_directly(self):
        log = make_log(
            [(f"SELECT name FROM e WHERE id = {i}", i * 0.1, "u") for i in range(4)]
        )
        cleaner = StreamingCleaner(config())
        emitted = list(cleaner.process(log))
        # the counter moves at emission, not only in run()
        assert cleaner.stats.records_out == len(emitted) == 1

    def test_force_close_bound_from_execution_config(self):
        log = make_log(
            [(f"SELECT name FROM e WHERE id = {i}", i * 0.1, "u") for i in range(10)]
        )
        cleaner = StreamingCleaner(config(max_block_queries=4))
        cleaned = cleaner.run(log)
        assert cleaner.stats.blocks_force_closed >= 2
        assert cleaner.stats.max_open_queries <= 4
        # still cleans: several partial IN-merges instead of one big one
        assert len(cleaned) < 10

    def test_constructor_bound_is_deprecated_but_works(self):
        with pytest.warns(DeprecationWarning):
            cleaner = StreamingCleaner(config(), max_block_queries=4)
        assert cleaner.max_block_queries == 4
        assert cleaner.config.execution.max_block_queries == 4

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            with pytest.warns(DeprecationWarning):
                StreamingCleaner(max_block_queries=1)
        with pytest.raises(ValueError):
            config(max_block_queries=1)


class TestBatchEquivalence:
    def test_matches_batch_pipeline_on_synthetic_log(self, small_workload, sky_keys):
        pipeline_config = PipelineConfig(
            detection=DetectionContext(key_columns=sky_keys)
        )
        batch = CleaningPipeline(pipeline_config).run(small_workload.log)
        streamed, stats = stream(small_workload.log, pipeline_config)
        assert stats.blocks_force_closed == 0
        assert streamed.statements() == batch.clean_log.statements()

    def test_stats_account_for_everything(self, small_workload, sky_keys):
        pipeline_config = PipelineConfig(
            detection=DetectionContext(key_columns=sky_keys)
        )
        cleaned, stats = stream(small_workload.log, pipeline_config)
        assert stats.records_in == len(small_workload.log)
        assert stats.records_out == len(cleaned)
        assert stats.max_open_queries < len(small_workload.log)
