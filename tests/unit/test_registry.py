"""Unit tests for the pattern registry (frequency, userPopularity)."""

from repro.log import LogRecord, QueryLog
from repro.patterns import PatternRegistry, mine
from repro.pipeline import parse_log


def instances_for(entries):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user, ip=ip)
        for i, (sql, ts, user, ip) in enumerate(entries)
    )
    return mine(parse_log(log).queries).instances


Q = "SELECT a FROM t WHERE id = {}"
R = "SELECT b FROM u WHERE id = {}"


class TestRegistry:
    def test_frequency_counts_instances(self):
        registry = PatternRegistry.from_instances(
            instances_for([(Q.format(i), float(i), "u", None) for i in range(5)])
        )
        assert len(registry) == 1
        stats = registry.ranked()[0]
        assert stats.frequency == 5
        assert stats.query_count == 5

    def test_user_popularity_definition_10(self):
        entries = [(Q.format(1), 0.0, "u1", None), (Q.format(2), 1000.0, "u2", None)]
        registry = PatternRegistry.from_instances(instances_for(entries))
        assert registry.ranked()[0].user_popularity == 2

    def test_distinct_ips_tracked(self):
        entries = [
            (Q.format(1), 0.0, "u1", "1.1.1.1"),
            (Q.format(2), 1000.0, "u2", "2.2.2.2"),
            (Q.format(3), 2000.0, "u1", "1.1.1.1"),
        ]
        registry = PatternRegistry.from_instances(instances_for(entries))
        assert registry.ranked()[0].distinct_ips == 2

    def test_ranked_orders_by_frequency(self):
        entries = [(Q.format(i), float(i), "u", None) for i in range(5)]
        entries += [(R.format(1), 1000.0, "u", None)]
        registry = PatternRegistry.from_instances(instances_for(entries))
        ranked = registry.ranked()
        assert ranked[0].frequency >= ranked[1].frequency

    def test_top_limits(self):
        entries = [(Q.format(1), 0.0, "u", None), (R.format(1), 1000.0, "u", None)]
        registry = PatternRegistry.from_instances(instances_for(entries))
        assert len(registry.top(1)) == 1

    def test_mark_antipattern(self):
        registry = PatternRegistry.from_instances(
            instances_for([(Q.format(i), float(i), "u", None) for i in range(3)])
        )
        unit = registry.ranked()[0].unit
        registry.mark_antipattern(unit, "DW-Stifle")
        assert registry.ranked()[0].is_antipattern
        assert registry.ranked(antipatterns=False) == []
        assert len(registry.ranked(antipatterns=True)) == 1

    def test_mark_unknown_unit_is_ignored(self):
        registry = PatternRegistry()
        registry.mark_antipattern(("nope",), "DW-Stifle")  # must not raise

    def test_coverage(self):
        registry = PatternRegistry.from_instances(
            instances_for([(Q.format(i), float(i), "u", None) for i in range(4)])
        )
        assert registry.ranked()[0].coverage(8) == 0.5

    def test_totals(self):
        registry = PatternRegistry.from_instances(
            instances_for([(Q.format(i), float(i), "u", None) for i in range(4)])
        )
        assert registry.total_instances() == 4
        assert registry.total_queries() == 4
        assert registry.max_frequency() == 4

    def test_empty_registry(self):
        registry = PatternRegistry()
        assert registry.max_frequency() == 0
        assert registry.ranked() == []
