"""Unit tests for the pattern registry (frequency, userPopularity)."""

from repro.log import LogRecord, QueryLog
from repro.patterns import PatternRegistry, mine
from repro.pipeline import parse_log


def mining_for(entries):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user, ip=ip)
        for i, (sql, ts, user, ip) in enumerate(entries)
    )
    return mine(parse_log(log).queries)


def instances_for(entries):
    return mining_for(entries).instances


Q = "SELECT a FROM t WHERE id = {}"
R = "SELECT b FROM u WHERE id = {}"


class TestRegistry:
    def test_frequency_counts_instances(self):
        registry = PatternRegistry.from_instances(
            instances_for([(Q.format(i), float(i), "u", None) for i in range(5)])
        )
        assert len(registry) == 1
        stats = registry.ranked()[0]
        assert stats.frequency == 5
        assert stats.query_count == 5

    def test_user_popularity_definition_10(self):
        entries = [(Q.format(1), 0.0, "u1", None), (Q.format(2), 1000.0, "u2", None)]
        registry = PatternRegistry.from_instances(instances_for(entries))
        assert registry.ranked()[0].user_popularity == 2

    def test_distinct_ips_tracked(self):
        entries = [
            (Q.format(1), 0.0, "u1", "1.1.1.1"),
            (Q.format(2), 1000.0, "u2", "2.2.2.2"),
            (Q.format(3), 2000.0, "u1", "1.1.1.1"),
        ]
        registry = PatternRegistry.from_instances(instances_for(entries))
        assert registry.ranked()[0].distinct_ips == 2

    def test_ranked_orders_by_frequency(self):
        entries = [(Q.format(i), float(i), "u", None) for i in range(5)]
        entries += [(R.format(1), 1000.0, "u", None)]
        registry = PatternRegistry.from_instances(instances_for(entries))
        ranked = registry.ranked()
        assert ranked[0].frequency >= ranked[1].frequency

    def test_top_limits(self):
        entries = [(Q.format(1), 0.0, "u", None), (R.format(1), 1000.0, "u", None)]
        registry = PatternRegistry.from_instances(instances_for(entries))
        assert len(registry.top(1)) == 1

    def test_mark_antipattern(self):
        registry = PatternRegistry.from_instances(
            instances_for([(Q.format(i), float(i), "u", None) for i in range(3)])
        )
        unit = registry.ranked()[0].unit
        registry.mark_antipattern(unit, "DW-Stifle")
        assert registry.ranked()[0].is_antipattern
        assert registry.ranked(antipatterns=False) == []
        assert len(registry.ranked(antipatterns=True)) == 1

    def test_mark_unknown_unit_is_ignored(self):
        registry = PatternRegistry()
        registry.mark_antipattern(("nope",), "DW-Stifle")  # must not raise

    def test_coverage(self):
        registry = PatternRegistry.from_instances(
            instances_for([(Q.format(i), float(i), "u", None) for i in range(4)])
        )
        assert registry.ranked()[0].coverage(8) == 0.5

    def test_totals(self):
        registry = PatternRegistry.from_instances(
            instances_for([(Q.format(i), float(i), "u", None) for i in range(4)])
        )
        assert registry.total_instances() == 4
        assert registry.total_queries() == 4
        assert registry.max_frequency() == 4

    def test_empty_registry(self):
        registry = PatternRegistry()
        assert registry.max_frequency() == 0
        assert registry.ranked() == []


MIXED_ENTRIES = [
    # Two users alternating two templates plus a burst of a third —
    # several patterns, several runs, distinct ips.
    (Q.format(1), 0.0, "u1", "1.1.1.1"),
    (Q.format(2), 1.0, "u1", "1.1.1.1"),
    (Q.format(3), 2.0, "u1", "1.1.1.2"),
    (R.format(1), 3.0, "u1", "1.1.1.1"),
    (Q.format(4), 0.5, "u2", "2.2.2.2"),
    (R.format(2), 1.5, "u2", "2.2.2.2"),
    (Q.format(5), 2.5, "u2", None),
    (R.format(3), 3.5, "u2", "2.2.2.3"),
    (Q.format(6), 5000.0, "u2", "2.2.2.2"),
]


def row_key(stats):
    return (
        stats.unit,
        stats.skeletons,
        stats.frequency,
        frozenset(stats.users),
        frozenset(stats.ips),
        stats.query_count,
    )


class TestRunningAggregates:
    """total_instances / total_queries / max_frequency are maintained
    incrementally — they must always equal a full recomputation."""

    def test_aggregates_match_recomputation(self):
        registry = PatternRegistry()
        for instance in instances_for(MIXED_ENTRIES):
            registry.add_instance(instance)
            rows = list(registry)
            assert registry.total_instances() == sum(
                row.frequency for row in rows
            )
            assert registry.total_queries() == sum(
                row.query_count for row in rows
            )
            assert registry.max_frequency() == max(
                row.frequency for row in rows
            )


class TestRunAggregation:
    """add_run must be row-for-row identical to adding the run's cycles
    one instance at a time (registry_stage aggregates runs)."""

    def test_from_runs_equals_from_instances(self):
        mining = mining_for(MIXED_ENTRIES)
        by_runs = PatternRegistry.from_runs(mining.runs)
        by_instances = PatternRegistry.from_instances(mining.instances)
        assert [row_key(r) for r in by_runs.ranked()] == [
            row_key(r) for r in by_instances.ranked()
        ]
        assert by_runs.total_instances() == by_instances.total_instances()
        assert by_runs.total_queries() == by_instances.total_queries()
        assert by_runs.max_frequency() == by_instances.max_frequency()

    def test_add_run_updates_aggregates(self):
        mining = mining_for(MIXED_ENTRIES)
        registry = PatternRegistry()
        for run in mining.runs:
            registry.add_run(run)
        assert registry.total_instances() == mining.instance_count
        assert registry.total_queries() == sum(
            len(run.queries) for run in mining.runs
        )


class TestInternedKeys:
    """Rows are keyed on interned unit ids when available; the public
    lookups must accept both the int and the string representation."""

    def test_lookup_accepts_both_representations(self):
        mining = mining_for(MIXED_ENTRIES)
        registry = PatternRegistry.from_runs(mining.runs)
        for stats in registry:
            assert registry.get(stats.unit) is stats
            assert stats.unit in registry
            if stats.unit_ids is not None:
                assert registry.get(stats.unit_ids) is stats
                assert stats.unit_ids in registry

    def test_mark_antipattern_by_interned_unit(self):
        mining = mining_for(MIXED_ENTRIES)
        registry = PatternRegistry.from_runs(mining.runs)
        stats = registry.ranked()[0]
        assert stats.unit_ids is not None
        registry.mark_antipattern(stats.unit_ids, "DW-Stifle")
        assert registry.get(stats.unit).is_antipattern

    def test_uninterned_instances_fall_back_to_string_keys(self):
        import dataclasses

        instances = [
            dataclasses.replace(
                instance,
                unit_ids=None,
                queries=tuple(
                    dataclasses.replace(query, interned_id=-1)
                    for query in instance.queries
                ),
            )
            for instance in instances_for(MIXED_ENTRIES)
        ]
        registry = PatternRegistry.from_instances(instances)
        for stats in registry:
            assert stats.unit_ids is None
            assert registry.get(stats.unit) is stats
