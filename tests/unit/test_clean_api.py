"""Unit tests for the unified ``repro.clean()`` entry point and the
deprecation shims around the old one-call helpers."""

import warnings

import pytest

import repro
from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.pipeline import ExecutionConfig, PipelineConfig
from repro.pipeline.framework import clean_log
from repro.pipeline.streaming import StreamingCleaner, clean_log_streaming

KEYS = frozenset({"empid", "id", "objid"})


def stifle_log(n=4):
    return QueryLog(
        LogRecord(
            seq=i,
            sql=f"SELECT name FROM e WHERE id = {i}",
            timestamp=i * 0.1,
            user="u",
        )
        for i in range(n)
    )


def config(**kwargs):
    return PipelineConfig(
        detection=DetectionContext(key_columns=KEYS), **kwargs
    )


class TestCleanDispatch:
    def test_default_is_batch_with_full_artifacts(self):
        result = repro.clean(stifle_log(), config())
        assert result.execution_mode == "batch"
        assert len(result.clean_log) == 1
        assert result.registry is not None
        assert result.overview().original_size == 4

    def test_streaming_mode(self):
        result = repro.clean(stifle_log(), config(), execution="streaming")
        assert result.execution_mode == "streaming"
        assert len(result.clean_log) == 1
        assert result.streaming_stats.records_in == 4
        assert result.streaming_stats.records_out == 1
        assert result.parallel_stats is None

    def test_parallel_mode(self):
        result = repro.clean(
            stifle_log(),
            config(),
            execution=ExecutionConfig(mode="parallel", workers=2),
        )
        assert result.execution_mode == "parallel"
        assert len(result.clean_log) == 1
        assert result.parallel_stats.records_in == 4
        assert result.streaming_stats is None

    def test_mode_can_come_from_the_config_itself(self):
        cfg = config(execution=ExecutionConfig(mode="streaming"))
        result = repro.clean(stifle_log(), cfg)
        assert result.execution_mode == "streaming"

    def test_execution_override_does_not_mutate_config(self):
        cfg = config()
        repro.clean(stifle_log(), cfg, execution="streaming")
        assert cfg.execution.mode == "batch"

    def test_invalid_mode_string(self):
        with pytest.raises(ValueError):
            repro.clean(stifle_log(), execution="distributed")

    def test_all_modes_agree(self):
        log = stifle_log(6)
        results = {
            mode: repro.clean(log, config(), execution=mode)
            for mode in ("batch", "streaming", "parallel")
        }
        statements = {
            mode: result.clean_log.statements()
            for mode, result in results.items()
        }
        assert statements["batch"] == statements["streaming"]
        assert statements["batch"] == statements["parallel"]


class TestLeanResultGuards:
    """Streaming/parallel results say *why* an artifact is missing."""

    def test_overview_raises_with_mode_in_message(self):
        result = repro.clean(stifle_log(), config(), execution="streaming")
        with pytest.raises(ValueError, match="streaming"):
            result.overview()

    def test_removal_log_raises(self):
        result = repro.clean(stifle_log(), config(), execution="parallel")
        with pytest.raises(ValueError, match="parallel"):
            result.removal_log

    def test_clean_log_always_available(self):
        for mode in ("batch", "streaming", "parallel"):
            result = repro.clean(stifle_log(), config(), execution=mode)
            assert isinstance(result.clean_log, QueryLog)


class TestDeprecatedWrappers:
    def test_clean_log_warns_and_behaves(self):
        log = stifle_log()
        with pytest.warns(DeprecationWarning, match="repro.clean"):
            cleaned = clean_log(log, config())
        assert cleaned == repro.clean(log, config()).clean_log

    def test_clean_log_streaming_warns_and_behaves(self):
        log = stifle_log()
        with pytest.warns(DeprecationWarning, match="repro.clean"):
            cleaned, stats = clean_log_streaming(log, config())
        reference = repro.clean(log, config(), execution="streaming")
        assert cleaned == reference.clean_log
        assert stats.records_out == reference.streaming_stats.records_out

    def test_clean_log_streaming_bound_still_respected(self):
        log = stifle_log(10)
        with pytest.warns(DeprecationWarning):
            cleaned, stats = clean_log_streaming(
                log, config(), max_block_queries=4
            )
        assert stats.blocks_force_closed >= 2
        assert stats.max_open_queries <= 4

    def test_each_shim_warns_exactly_once(self):
        """Every shim emits exactly one DeprecationWarning per call —
        no doubled warnings from nested deprecated paths, no silence."""
        log = stifle_log()

        def sole_warning(func):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                func()
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1, [str(w.message) for w in caught]
            return str(deprecations[0].message)

        assert "repro.clean" in sole_warning(lambda: clean_log(log, config()))
        assert "repro.clean" in sole_warning(
            lambda: clean_log_streaming(log, config())
        )
        assert "max_block_queries" in sole_warning(
            lambda: StreamingCleaner(config(), max_block_queries=4)
        )

    def test_streaming_cleaner_bound_shim_forwards_behaviour(self):
        """``StreamingCleaner(max_block_queries=)`` must behave exactly
        like the replacement ``ExecutionConfig(max_block_queries=)``."""
        log = stifle_log(10)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = StreamingCleaner(config(), max_block_queries=4)
        shim_clean = list(shimmed.process(log.records()))
        modern = StreamingCleaner(
            config(execution=ExecutionConfig(max_block_queries=4))
        )
        modern_clean = list(modern.process(log.records()))
        assert shim_clean == modern_clean
        assert shimmed.stats.blocks_force_closed == modern.stats.blocks_force_closed
        assert shimmed.stats.max_open_queries <= 4

    def test_exports(self):
        assert callable(repro.clean)
        assert repro.ExecutionConfig is ExecutionConfig
        assert "clean" in repro.__all__
