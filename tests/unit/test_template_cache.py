"""Unit tests for the parse fast path's TemplateCache.

The cache's contract is absolute: a fetched ParsedQuery must equal what
the full parse path would have produced, byte for byte, for *every*
statement — correctness comes from build-time verification (literal
vector + splice round-trip), and anything the verifier cannot prove
falls back to the full parser.  These tests pin the LRU mechanics, the
fallback behaviour, picklability, and the cached==uncached equivalence,
plus a Hypothesis property tying fingerprint equality to template
identity.
"""

import pickle

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.log import LogRecord
from repro.obs import Recorder
from repro.patterns.models import ParsedQuery
from repro.pipeline.config import ExecutionConfig
from repro.pipeline.framework import parse_log
from repro.skeleton import build_template
from repro.skeleton.cache import TemplateCache
from repro.sqlparser import parse
from repro.sqlparser.lexer import fingerprint_statement


def record(sql, seq=0, user="u"):
    return LogRecord(seq=seq, sql=sql, timestamp=float(seq), user=user)


def full_parse(rec):
    return ParsedQuery.from_statement(rec, parse(rec.sql))


def records(statements):
    return [record(sql, seq=i) for i, sql in enumerate(statements)]


class TestFingerprintScanner:
    def test_constants_extracted_in_order(self):
        fp = fingerprint_statement(
            "SELECT a FROM t WHERE b = 12 AND name = 'bob' AND c = -3.5"
        )
        assert fp is not None
        assert fp.constants == (
            ("number", "12"),
            ("string", "bob"),
            ("number", "-3.5"),
        )

    def test_same_template_same_key(self):
        a = fingerprint_statement("SELECT a FROM t WHERE b = 1")
        b = fingerprint_statement("select  A from T where B = 99")
        assert a is not None and b is not None
        # keywords fold case; identifiers keep verbatim spelling, so the
        # case-changed variant is a *different* key (its formatted AST
        # differs too) — but equal-case, different-constant is the same.
        c = fingerprint_statement("SELECT a FROM t WHERE b = 99")
        assert a.key == c.key
        assert a.key != b.key

    def test_escaped_quotes_unescaped_in_constants(self):
        fp = fingerprint_statement("SELECT a FROM t WHERE n = 'o''brien'")
        assert fp is not None
        assert fp.constants == (("string", "o'brien"),)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE b = 'unterminated",
            "SELECT 1abc FROM t",  # number glued to a word → LexerError
            "SELECT a FROM t /* unterminated comment",
            "SELECT\xa0a FROM t",  # unicode whitespace the lexer rejects
            "SELECT [we\x1fird] FROM t",  # control char breaks key injectivity
        ],
    )
    def test_scanner_bails_on_lexer_disagreements(self, sql):
        assert fingerprint_statement(sql) is None


class TestTemplateCacheMechanics:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            TemplateCache(0)

    def test_hit_equals_full_parse(self):
        cache = TemplateCache()
        proto = record("SELECT a FROM t WHERE b = 1", seq=0)
        assert cache.fetch(proto) is None
        cache.store(proto.sql, full_parse(proto))
        member = record("SELECT a FROM t WHERE b = 22", seq=1)
        hit = cache.fetch(member)
        assert hit is not None
        assert hit == full_parse(member)
        assert cache.hits == 1 and cache.misses == 1

    def test_exact_text_hit_rebinds_record(self):
        cache = TemplateCache()
        first = record("SELECT a FROM t WHERE b = 1", seq=0)
        cache.fetch(first)
        cache.store(first.sql, full_parse(first))
        second = record(first.sql, seq=7)
        hit = cache.fetch(second)
        assert hit.record is second
        assert hit == full_parse(second)

    def test_lru_evicts_oldest_key(self):
        cache = TemplateCache(2)
        statements = [
            "SELECT a FROM t WHERE b = 1",
            "SELECT c FROM u WHERE d = 2",
            "SELECT e FROM v WHERE f = 3",
        ]
        for rec in records(statements):
            assert cache.fetch(rec) is None
            cache.store(rec.sql, full_parse(rec))
        assert len(cache) == 2
        assert cache.key_entries == 2
        assert cache.evictions >= 2  # one per level for the oldest entry
        # The first statement was evicted: a same-template probe misses.
        assert cache.fetch(record("SELECT a FROM t WHERE b = 9")) is None
        # The most recent one is still resident.
        assert cache.fetch(record("SELECT e FROM v WHERE f = 9")) is not None

    def test_failures_stay_l1_only(self):
        cache = TemplateCache()
        bad = record("SELECT FROM WHERE ((", seq=0)
        assert cache.fetch(bad) is None
        try:
            parse(bad.sql)
        except Exception as error:
            cache.store(bad.sql, (error, "parse_error"))
        assert cache.key_entries == 0
        again = cache.fetch(record(bad.sql, seq=1))
        assert isinstance(again, tuple)


class TestUnsafeFallback:
    @pytest.mark.parametrize(
        "proto_sql, member_sql",
        [
            # CAST consumes the type size into type_name; the scanner
            # sees it as a constant → literal vectors disagree.
            (
                "SELECT CAST(x AS varchar(10)) FROM t",
                "SELECT CAST(x AS varchar(20)) FROM t",
            ),
            # A string-literal alias is not a Literal node in the AST.
            ("SELECT a AS 'label' FROM t", "SELECT a AS 'other' FROM t"),
            # Double unary minus folds differently in parser vs scanner.
            ("SELECT - -5 FROM t", "SELECT - -7 FROM t"),
        ],
    )
    def test_ambiguous_keys_always_full_parse(self, proto_sql, member_sql):
        cache = TemplateCache()
        proto = record(proto_sql, seq=0)
        assert cache.fetch(proto) is None
        cache.store(proto.sql, full_parse(proto))
        member = record(member_sql, seq=1)
        assert cache.fetch(member) is None  # unsafe key → full parse
        cache.store(member.sql, full_parse(member))
        # The exact texts still hit through L1, with correct rebinding.
        repeat = record(member_sql, seq=2)
        hit = cache.fetch(repeat)
        assert hit is not None
        assert hit == full_parse(repeat)

    def test_unsafe_marker_survives_pickling(self):
        cache = TemplateCache()
        proto = record("SELECT - -5 FROM t", seq=0)
        cache.fetch(proto)
        cache.store(proto.sql, full_parse(proto))
        clone = pickle.loads(pickle.dumps(cache))
        fresh = record("SELECT - -9 FROM t", seq=1)
        assert clone.fetch(fresh) is None  # still treated as unsafe

    def test_pickled_cache_still_hits(self):
        cache = TemplateCache()
        proto = record("SELECT a FROM t WHERE b = 1", seq=0)
        cache.fetch(proto)
        cache.store(proto.sql, full_parse(proto))
        clone = pickle.loads(pickle.dumps(cache))
        member = record("SELECT a FROM t WHERE b = 5", seq=1)
        hit = clone.fetch(member)
        assert hit == full_parse(member)
        assert clone.hits == cache.hits + 1


class TestRawTemplateMemo:
    """The L1.5 raw-template memo: scanner-free binds, verified once."""

    def warmed(self, proto_sql):
        cache = TemplateCache()
        proto = record(proto_sql, seq=0)
        assert cache.fetch(proto) is None
        cache.store(proto.sql, full_parse(proto))
        return cache

    def test_members_bind_without_the_scanner(self):
        cache = self.warmed("SELECT a FROM t WHERE b = 1 AND n = 'x'")
        # Admission happened at store time: one verified raw template.
        (memo,) = cache._by_raw.values()
        assert type(memo) is tuple
        member = record("SELECT a FROM t WHERE b = 972 AND n = 'o''k'", seq=1)
        hit = cache.fetch(member)
        assert hit == full_parse(member)
        assert hit.clauses == full_parse(member).clauses
        assert cache.hits == 1

    def test_folded_unary_minus_is_replayed(self):
        cache = self.warmed("SELECT a FROM t WHERE dec > -5.5 AND ra < 2")
        (memo,) = cache._by_raw.values()
        assert type(memo) is tuple and memo[1] == (0,)  # fold at index 0
        member = record("SELECT a FROM t WHERE dec > -7e-1 AND ra < 9", seq=1)
        assert cache.fetch(member) == full_parse(member)

    def test_literal_in_comment_marks_raw_key_unsafe(self):
        # The strip regex sees `5` inside the comment; the scanner does
        # not — the spans disagree, so the raw key must never be served.
        cache = self.warmed("SELECT a FROM t WHERE b = 1 /* top 5 */")
        (memo,) = cache._by_raw.values()
        assert type(memo) is not tuple
        member = record("SELECT a FROM t WHERE b = 2 /* top 5 */", seq=1)
        assert cache.fetch(member) == full_parse(member)

    def test_scientific_notation_members_bind_scanner_free(self):
        # ``1.e5`` — dot immediately followed by the exponent, no
        # fraction digits — must strip as ONE literal in both the regex
        # and the scanner, or the memo would serve a torn raw key.
        cache = self.warmed("SELECT a FROM t WHERE b = 1.e5")
        (memo,) = cache._by_raw.values()
        assert type(memo) is tuple and memo[1] == ()
        member = record("SELECT a FROM t WHERE b = 27.e3", seq=1)
        assert cache.fetch(member) == full_parse(member)

    def test_double_unary_minus_is_unsafe(self):
        # ``- -5``: the scanner folds the inner minus into the number's
        # value, leaving an operator-then-negative-literal sequence the
        # splice verifier cannot round-trip — the L2 entry is unsafe, so
        # the raw key must be pinned to the full path as well.
        cache = self.warmed("SELECT a FROM t WHERE b = - -5")
        (memo,) = cache._by_raw.values()
        assert type(memo) is not tuple
        # Every member misses — the pipeline then takes the full parse
        # path, so the output stays byte-identical by construction.
        member = record("SELECT a FROM t WHERE b = - -9", seq=1)
        assert cache.fetch(member) is None

    def test_quote_pair_inside_bracket_identifier_is_unsafe(self):
        # The strip regex sees ``''`` inside ``[a''b]`` as an empty
        # string literal; the scanner sees a delimited identifier and no
        # literal at all.  Spans disagree, so the raw key is pinned to
        # the full scanner path — members still come out byte-correct.
        cache = self.warmed("SELECT [a''b] FROM t WHERE x = 1")
        (memo,) = cache._by_raw.values()
        assert type(memo) is not tuple
        member = record("SELECT [a''b] FROM t WHERE x = 2", seq=1)
        assert cache.fetch(member) == full_parse(member)

    def test_raw_memo_respects_the_lru_bound(self):
        cache = TemplateCache(2)
        for i, sql in enumerate(
            [
                "SELECT a FROM t WHERE b = 1",
                "SELECT c FROM u WHERE d = 2",
                "SELECT e FROM v WHERE f = 3",
            ]
        ):
            rec = record(sql, seq=i)
            assert cache.fetch(rec) is None
            cache.store(rec.sql, full_parse(rec))
        assert len(cache._by_raw) == 2


class TestRawScanAudit:
    """Pin the ``_raw_scan``-vs-scanner audit: where the cheap regex
    strip provably mirrors the DFA, and where it must NOT be trusted."""

    ALIGNED = [
        "SELECT a FROM t WHERE b = 1.e5",
        "SELECT a FROM t WHERE b = 1.E+10",
        "SELECT a FROM t WHERE b = .5e3",
        "SELECT a FROM t WHERE b = 1.",
        "SELECT x FROM t WHERE n = 'it''s'",
        "SELECT x FROM t WHERE n = ''",
        "SELECT a FROM t WHERE b BETWEEN 1. AND .2",
    ]

    DIVERGENT = [
        # member-access digits: regex strips ``5``, scanner emits the
        # wider ``.5`` number token after the DOT
        "SELECT a.5 FROM t",
        # string-lookalikes inside delimited identifiers
        "SELECT [a''b] FROM t",
        "SELECT \"a''b\" FROM t",
        # literals inside comments are invisible to the scanner
        "SELECT a FROM t WHERE b = 1 /* top 5 */",
        "SELECT a FROM t -- 99",
    ]

    @pytest.mark.parametrize("text", ALIGNED)
    def test_aligned_spans_and_constants(self, text):
        from repro.skeleton.cache import _raw_scan

        raw = _raw_scan(text)
        fp = fingerprint_statement(text)
        assert raw is not None and fp is not None
        assert raw[1] == fp.spans
        assert raw[2] == list(fp.constants)

    @pytest.mark.parametrize("text", DIVERGENT)
    def test_divergent_spans_block_admission(self, text):
        from repro.skeleton.cache import _raw_scan

        raw = _raw_scan(text)
        fp = fingerprint_statement(text)
        assert raw is not None and fp is not None
        assert raw[1] != fp.spans

    def test_scanner_punt_means_no_fingerprint(self):
        # ``1.e`` — an exponent marker with no digits — makes the
        # scanner refuse to fingerprint; without a fingerprint nothing
        # is ever admitted into the raw memo for that text.
        from repro.skeleton.cache import _raw_scan

        text = "SELECT a FROM t WHERE b = 1.e"
        assert fingerprint_statement(text) is None
        assert _raw_scan(text) is not None  # the regex alone can't know


STATEMENTS = [
    "SELECT a, b FROM t WHERE a = 0 AND b >= 3",
    "SELECT a, b FROM t WHERE a = 7 AND b >= 900",
    "SELECT name FROM employee WHERE empid = 8",
    "SELECT TOP 10 a FROM t WHERE b BETWEEN 1 AND 2 ORDER BY a DESC",
    "SELECT TOP 10 a FROM t WHERE b BETWEEN 30 AND 40 ORDER BY a DESC",
    "SELECT x FROM t WHERE name = 'abc' AND k IN (1, 2, 3)",
    "SELECT x FROM t WHERE name = 'o''hara' AND k IN (9, 8, 7)",
    "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z = 5)",
    "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END FROM t",
    "SELECT CAST(x AS varchar(10)) FROM t",
    "SELECT a AS 'label' FROM t",
    "SELECT - -5 FROM t",
    "SELECT a FROM t WHERE b = -2.5e3",
    "SELECT count(*) FROM t GROUP BY a HAVING count(*) > 3",
    "SELECT a FROM t UNION ALL SELECT b FROM u WHERE c = 1",
    "DROP TABLE t",
    "INSERT INTO t VALUES (1)",
    "SELECT broken FROM WHERE ((",
]


class TestCachedParseLogDifferential:
    def test_cached_equals_uncached(self):
        # Repeat the statement set so hits genuinely occur.
        log = records(STATEMENTS * 3)
        uncached = parse_log(log)
        recorder = Recorder()
        cached = parse_log(log, cache=TemplateCache(), recorder=recorder)
        assert cached.queries == uncached.queries
        assert cached.non_select == uncached.non_select
        assert [r for r, _ in cached.syntax_errors] == [
            r for r, _ in uncached.syntax_errors
        ]
        counters = recorder.metrics.stage("parse").counters
        assert counters["parse_cache_hits"] > 0
        assert (
            counters["parse_cache_hits"] + counters["parse_cache_misses"]
            == counters["records_in"]
        )
        assert recorder.metrics.conservation_violations() == []

    def test_constant_variants_share_interned_template(self):
        cache = TemplateCache()
        a = record("SELECT a, b FROM t WHERE a = 0 AND b >= 3", seq=0)
        b = record("SELECT a, b FROM t WHERE a = 7 AND b >= 900", seq=1)
        cache.fetch(a)
        cache.store(a.sql, full_parse(a))
        hit = cache.fetch(b)
        assert hit is not None
        proto = cache.fetch(record(a.sql, seq=2))
        # Template / outputs are the *same objects*, not just equal.
        assert hit.template is proto.template
        assert hit.outputs is proto.outputs
        assert hit.template_id == proto.template_id


class TestExecutionConfigKnobs:
    def test_parse_cache_size_validated(self):
        with pytest.raises(ValueError, match="parse_cache_size"):
            ExecutionConfig(parse_cache_size=0)

    def test_defaults(self):
        execution = ExecutionConfig()
        assert execution.parse_cache is True
        assert execution.parse_cache_size == 4096


numbers = st.integers(min_value=0, max_value=10**9)
strings = st.text(alphabet="abcXYZ 019", max_size=10)


@given(
    template=st.sampled_from(
        [
            "SELECT a, b FROM t WHERE a = {n} AND name = '{s}'",
            "SELECT name FROM employee WHERE empid = {n}",
            "SELECT TOP 5 a FROM t WHERE b BETWEEN {n} AND {n2} ORDER BY a",
            "SELECT x FROM t WHERE k IN ({n}, {n2}) AND name = '{s}'",
        ]
    ),
    n=numbers,
    n2=numbers,
    s=strings,
)
@settings(max_examples=150, deadline=None)
def test_fingerprint_equality_implies_identical_skeleton(template, n, n2, s):
    """The invariant the whole fast path rests on: statements with equal
    fingerprint keys derive the identical template (hence identical
    SSC/SFC/SWC skeletons)."""
    base = template.format(n=1, n2=2, s="zz")
    variant = template.format(n=n, n2=n2, s=s)
    fp_base = fingerprint_statement(base)
    fp_variant = fingerprint_statement(variant)
    assert fp_base is not None and fp_variant is not None
    assert fp_base.key == fp_variant.key
    assert build_template(parse(base)) == build_template(parse(variant))


@given(
    template=st.sampled_from(
        [
            "SELECT a FROM t WHERE b = {n}",
            "SELECT a FROM t WHERE name = '{s}' AND b <= {n}",
            "SELECT count(*) FROM t WHERE b IN ({n}, {n2})",
        ]
    ),
    n=numbers,
    n2=numbers,
    s=strings,
)
@settings(max_examples=150, deadline=None)
def test_cache_hit_equals_full_parse_property(template, n, n2, s):
    """Differential property: whatever constants appear, instantiating
    from the cached prototype equals the full parse."""
    cache = TemplateCache()
    proto = record(template.format(n=0, n2=1, s="seed"), seq=0)
    cache.fetch(proto)
    cache.store(proto.sql, full_parse(proto))
    member = record(template.format(n=n, n2=n2, s=s), seq=1)
    result = cache.fetch(member)
    if result is None:  # unsafe/bail fallback is allowed, wrongness is not
        return
    assert result == full_parse(member)
