"""Unit tests for human-vs-bot classification (Section 6.5 extension)."""

import pytest

from repro.analysis.behavior import (
    BehaviorConfig,
    UserActivity,
    classify_users,
    extract_activity,
    score_classification,
    score_user,
)
from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.patterns import SwsConfig
from repro.pipeline import CleaningPipeline, PipelineConfig

KEYS = frozenset({"id", "objid"})


def run_pipeline(entries):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts, user) in enumerate(entries)
    )
    config = PipelineConfig(
        detection=DetectionContext(key_columns=KEYS), sws=SwsConfig()
    )
    return CleaningPipeline(config).run(log)


def bot_entries(count=80, user="bot"):
    return [
        (f"SELECT a FROM t WHERE id = {i}", i * 0.5, user) for i in range(count)
    ]


def human_entries(user="human"):
    shapes = [
        "SELECT a FROM t WHERE x > {}",
        "SELECT b, c FROM u WHERE y < {}",
        "SELECT count(*) FROM t WHERE z BETWEEN {} AND 99",
        "SELECT a FROM t ORDER BY a",
    ]
    return [
        (shapes[i % len(shapes)].format(i), 1_000_000 + i * 60.0, user)
        for i in range(12)
    ]


class TestFeatureExtraction:
    def test_activity_features(self):
        result = run_pipeline(bot_entries(10))
        activity = extract_activity(result)["bot"]
        assert activity.query_count == 10
        assert activity.distinct_templates == 1
        assert activity.median_gap == pytest.approx(0.5)
        assert activity.antipattern_share == 1.0  # the whole run is a stifle

    def test_single_query_user_has_infinite_gap(self):
        result = run_pipeline([("SELECT a FROM t WHERE x > 1", 0.0, "once")])
        activity = extract_activity(result)["once"]
        assert activity.median_gap == float("inf")

    def test_diversity_of_varied_user(self):
        result = run_pipeline(human_entries())
        activity = extract_activity(result)["human"]
        assert activity.template_diversity > 0.3


class TestClassification:
    def test_bot_classified_as_bot(self):
        result = run_pipeline(bot_entries())
        verdicts = classify_users(result)
        assert verdicts["bot"].is_bot

    def test_human_classified_as_human(self):
        result = run_pipeline(human_entries())
        verdicts = classify_users(result)
        assert not verdicts["human"].is_bot

    def test_mixed_log_separates_users(self):
        result = run_pipeline(bot_entries() + human_entries())
        verdicts = classify_users(result)
        assert verdicts["bot"].is_bot
        assert not verdicts["human"].is_bot

    def test_shape_features_add_points(self):
        result = run_pipeline(bot_entries())
        with_shape = classify_users(result, BehaviorConfig(use_shape_features=True))
        without = classify_users(result, BehaviorConfig(use_shape_features=False))
        assert with_shape["bot"].score >= without["bot"].score

    def test_score_user_point_system(self):
        activity = UserActivity(
            user="u",
            query_count=100,
            distinct_templates=2,
            median_gap=0.1,
            antipattern_share=1.0,
            sws_share=0.0,
        )
        config = BehaviorConfig()
        assert score_user(activity, config) == 4.0
        baseline = BehaviorConfig(use_shape_features=False)
        assert score_user(activity, baseline) == 3.0


class TestScoring:
    def test_score_classification(self):
        result = run_pipeline(bot_entries() + human_entries())
        verdicts = classify_users(result)
        score = score_classification(
            verdicts, {"bot": True, "human": False, "absent": True}
        )
        assert score.total == 2  # unknown users ignored
        assert score.accuracy == 1.0
        assert score.bot_recall == 1.0
        assert score.human_recall == 1.0

    def test_empty_truth(self):
        score = score_classification({}, {})
        assert score.accuracy == 0.0


class TestGroundTruthIntegration:
    def test_generator_records_user_profiles(self, small_workload):
        profiles = small_workload.truth.user_profiles
        assert profiles
        assert any(name == "human" for name in profiles.values())
        assert small_workload.truth.is_bot("dw-stifle-u0") is True
        assert small_workload.truth.is_bot("human-u0") is False
        assert small_workload.truth.is_bot("nobody") is None
