"""Unit tests for the canonical SQL formatter."""

import pytest

from repro.sqlparser import ast, format_expression, format_sql, parse


def canonical(sql: str) -> str:
    return format_sql(parse(sql))


class TestCanonicalRendering:
    def test_keywords_uppercased_and_spacing_normalised(self):
        assert (
            canonical("select  a,b   from t where a=1")
            == "SELECT a, b FROM t WHERE a = 1"
        )

    def test_alias_rendered_with_as(self):
        assert canonical("SELECT a x FROM t y") == "SELECT a AS x FROM t AS y"

    def test_string_literal_quoting(self):
        assert canonical("SELECT 'O''Brien' FROM t") == "SELECT 'O''Brien' FROM t"

    def test_null_rendering(self):
        assert canonical("SELECT a FROM t WHERE a = null").endswith("a = NULL")

    def test_not_equal_normalised(self):
        assert canonical("SELECT a FROM t WHERE a != 1").endswith("a <> 1")

    def test_join_rendering(self):
        assert (
            canonical("SELECT a FROM t join u on t.i=u.i")
            == "SELECT a FROM t INNER JOIN u ON t.i = u.i"
        )

    def test_left_outer_join_rendering(self):
        assert "LEFT OUTER JOIN" in canonical(
            "SELECT a FROM t LEFT JOIN u ON t.i=u.i"
        )

    def test_union_rendering(self):
        text = canonical("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert text == "SELECT a FROM t UNION ALL SELECT b FROM u"

    def test_order_by_desc(self):
        assert canonical("SELECT a FROM t ORDER BY a desc").endswith("ORDER BY a DESC")

    def test_top_percent(self):
        assert canonical("SELECT top 5 percent a FROM t").startswith(
            "SELECT TOP 5 PERCENT"
        )

    def test_group_by_having(self):
        text = canonical("SELECT a FROM t GROUP BY a HAVING count(*) > 2")
        assert "GROUP BY a HAVING count(*) > 2" in text


class TestParenthesisation:
    def test_or_under_and_keeps_parentheses(self):
        sql = "SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3"
        assert canonical(sql) == sql

    def test_redundant_parentheses_dropped(self):
        assert (
            canonical("SELECT a FROM t WHERE (a = 1) AND (b = 2)")
            == "SELECT a FROM t WHERE a = 1 AND b = 2"
        )

    def test_arithmetic_grouping_preserved(self):
        sql = "SELECT 2 * (a - b) FROM t"
        assert canonical(sql) == sql

    def test_right_associative_subtraction_preserved(self):
        tree1 = parse("SELECT a - (b - c) FROM t")
        tree2 = parse(format_sql(tree1))
        assert tree1 == tree2

    def test_not_over_disjunction(self):
        sql = "SELECT a FROM t WHERE NOT (a = 1 OR b = 2)"
        assert canonical(sql) == sql


class TestIdentifierQuoting:
    def test_plain_identifier_unquoted(self):
        assert canonical("SELECT abc FROM t") == "SELECT abc FROM t"

    def test_identifier_with_space_bracketed(self):
        assert canonical("SELECT [full name] FROM t") == "SELECT [full name] FROM t"

    def test_keyword_identifier_bracketed(self):
        assert canonical("SELECT [select] FROM t") == "SELECT [select] FROM t"


class TestPlaceholders:
    def test_placeholder_rendering(self):
        assert format_expression(ast.Placeholder(kind="number")) == "<num>"
        assert format_expression(ast.Placeholder(kind="string")) == "<str>"
        assert format_expression(ast.Placeholder(kind="null")) == "<null>"
        assert format_expression(ast.Placeholder(kind="var")) == "<var>"


class TestRoundTripSamples:
    SAMPLES = [
        "SELECT E.empId FROM Employees AS E WHERE E.department = 'sales'",
        "SELECT count(*) FROM photoprimary WHERE htmid >= @htm1 AND htmid <= @htm2",
        "SELECT TOP 10 name FROM DBObjects WHERE type = 'U' AND name NOT IN "
        "('LoadEvents', 'QueryResults') ORDER BY name",
        "SELECT a FROM (SELECT a FROM t WHERE x = 3) AS sub WHERE a > 0",
        "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM T",
        "SELECT a FROM t WHERE x IN (SELECT y FROM u)",
        "SELECT p.objid FROM fgetobjfromrect(1, 2, 3, 4) AS n, photoprimary AS p "
        "WHERE n.objid = p.objid AND r BETWEEN 10 AND 20",
    ]

    @pytest.mark.parametrize("sql", SAMPLES)
    def test_round_trip_is_stable(self, sql):
        once = format_sql(parse(sql))
        twice = format_sql(parse(once))
        assert once == twice
        assert parse(once) == parse(sql)

    def test_formatting_unknown_node_raises(self):
        with pytest.raises(TypeError):
            format_sql("not a node")  # type: ignore[arg-type]
