"""Fingerprint-scanner correctness edges (the PR 8 bugfix sweep).

Three families, each pinning a scanner/lexer agreement the template
cache's fast path depends on:

* **Delimited identifiers** — ``[objid]``, ``"objid"`` and ``objid``
  parse to the same AST today, but they must *not* share an L2
  fingerprint key: a splice renders the prototype's text, so folding
  the three forms onto one key would emit one form's delimiter bytes
  for another form's statement.  The fix keeps the opening delimiter in
  the key, which is injective (a bare word can never start with ``[``
  or ``"``).
* **Escape shapes** — neither the hand lexer nor the scanner treats
  ``""`` / ``]]`` as escapes; both see two adjacent tokens (or an
  error).  The scanner must mirror the lexer exactly or return ``None``
  so the full parser decides.
* **Number-literal edges** — wherever the scanner's number regex and
  the lexer's numeric-literal rules could diverge (``1.e5``, ``.5e-``,
  ``1e``, ``0x1F``), the scanner must punt (``None``) or agree; a
  divergence reaching the cache would be demoted to ``_UNSAFE`` by the
  build-time verification, never spliced.
"""

import pytest

from repro.log.models import LogRecord
from repro.patterns.models import ParsedQuery
from repro.skeleton.cache import TemplateCache
from repro.sqlparser import SqlError, format_sql, parse
from repro.sqlparser.lexer import fingerprint_statement


def record(seq: int, sql: str) -> LogRecord:
    return LogRecord(seq=seq, timestamp=float(seq), user="u", sql=sql)


def fresh_parse(rec: LogRecord) -> ParsedQuery:
    return ParsedQuery.from_statement(rec, parse(rec.sql))


def cached_parse(cache: TemplateCache, rec: LogRecord) -> ParsedQuery:
    """Fetch through ``cache``, full-parsing and storing on a miss."""
    cached = cache.fetch(rec)
    if cached is None:
        cached = fresh_parse(rec)
        cache.store(rec.sql, cached)
    assert not isinstance(cached, tuple), cached
    return cached


class TestDelimiterKeys:
    """The headline regression: delimiter kind is part of the L2 key."""

    FORMS = (
        "SELECT objid FROM PhotoObj WHERE ra = 1",
        "SELECT [objid] FROM PhotoObj WHERE ra = 1",
        'SELECT "objid" FROM PhotoObj WHERE ra = 1',
    )

    def test_three_forms_occupy_three_keys(self):
        # Pre-fix, all three folded to _FP_IDENT + "objid" and collided.
        keys = {fingerprint_statement(sql).key for sql in self.FORMS}
        assert len(keys) == 3

    def test_same_form_still_shares_a_key(self):
        # The fix must not break sharing *within* a delimiter form.
        for sql in self.FORMS:
            other = sql.replace("= 1", "= 2")
            assert (
                fingerprint_statement(sql).key
                == fingerprint_statement(other).key
            )

    @pytest.mark.parametrize("lazy", [False, True])
    @pytest.mark.parametrize("sql", FORMS)
    def test_cached_equals_uncached_per_form(self, sql, lazy):
        """Warm each form's own key, then fetch a constant variant: the
        cached instantiation must equal a fresh full parse, and its
        clause texts must render the same bytes."""
        cache = TemplateCache(lazy=lazy)
        cached_parse(cache, record(0, sql))
        variant = record(1, sql.replace("= 1", "= 2"))
        via_cache = cached_parse(cache, variant)
        direct = fresh_parse(variant)
        assert via_cache == direct
        assert via_cache.clauses == direct.clauses
        assert format_sql(via_cache.statement) == format_sql(direct.statement)

    @pytest.mark.parametrize("lazy", [False, True])
    def test_forms_never_cross_pollinate(self, lazy):
        """Warm the cache with *all* forms, then fetch variants of each:
        every answer must match its own form's fresh parse (pre-fix the
        shared key made one form splice another's prototype)."""
        cache = TemplateCache(lazy=lazy)
        for seq, sql in enumerate(self.FORMS):
            cached_parse(cache, record(seq, sql))
        for seq, sql in enumerate(self.FORMS):
            variant = record(100 + seq, sql.replace("= 1", "= 42"))
            assert cached_parse(cache, variant) == fresh_parse(variant)


class TestEscapeShapes:
    """``""`` / ``]]`` are not escapes — scanner and lexer must agree."""

    def test_doubled_quote_is_two_identifiers_both_sides(self):
        adjacent = 'SELECT "a""b" FROM t'
        spaced = 'SELECT "a" "b" FROM t'
        # The lexer reads both as identifier + alias — identical ASTs...
        assert format_sql(parse(adjacent)) == format_sql(parse(spaced))
        # ...so their shared fingerprint key is sound, and the scanner's
        # two-token reading mirrors the lexer's.
        assert (
            fingerprint_statement(adjacent).key
            == fingerprint_statement(spaced).key
        )

    def test_doubled_bracket_inside_identifier_punts(self):
        # ``[a]]b]`` is ``[a]`` + stray ``]``: the lexer errors and the
        # scanner (whose punct class has no ``]``) must return None —
        # never a key that could admit the text to the fast path.
        sql = "SELECT [a]]b] FROM t"
        assert fingerprint_statement(sql) is None
        with pytest.raises(SqlError):
            parse(sql)

    def test_adjacent_brackets_are_two_identifiers_both_sides(self):
        adjacent = "SELECT [a][b] FROM t"
        spaced = "SELECT [a] [b] FROM t"
        assert format_sql(parse(adjacent)) == format_sql(parse(spaced))
        assert (
            fingerprint_statement(adjacent).key
            == fingerprint_statement(spaced).key
        )

    @pytest.mark.parametrize(
        "sql",
        ["SELECT [] FROM t", 'SELECT "" FROM t'],
    )
    def test_empty_delimited_name_agrees(self, sql):
        # Both sides accept the empty delimited name; the cached parse
        # of a constant-variant must match a fresh one.
        parse(sql)
        assert fingerprint_statement(sql) is not None

    @pytest.mark.parametrize(
        "sql",
        ["SELECT [abc FROM t", 'SELECT "abc FROM t'],
    )
    def test_unterminated_delimiter_punts(self, sql):
        assert fingerprint_statement(sql) is None
        with pytest.raises(SqlError):
            parse(sql)


class TestNumberEdges:
    """Scanner/lexer agreement on numeric-literal edge shapes."""

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE b = 1.e5",
            "SELECT a FROM t WHERE b = 5e+3",
            "SELECT a FROM t WHERE b = 1.",
            "SELECT a FROM t WHERE b = .5",
            "SELECT a FROM t WHERE b = 1.5e-3",
        ],
    )
    @pytest.mark.parametrize("lazy", [False, True])
    def test_accepted_edges_round_trip_through_cache(self, sql, lazy):
        """Shapes both sides accept: the cached instantiation of a
        sibling constant must be byte-equal to its fresh parse."""
        assert fingerprint_statement(sql) is not None
        cache = TemplateCache(lazy=lazy)
        cached_parse(cache, record(0, sql))
        sibling = record(1, sql.replace("b =", "b ="))  # same template
        other = record(2, "SELECT a FROM t WHERE b = 7")
        via_cache = cached_parse(cache, other)
        direct = fresh_parse(other)
        assert via_cache == direct
        assert via_cache.clauses == direct.clauses
        assert sibling.sql == sql  # guard against a silent no-op edit

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE b = .5e-",
            "SELECT a FROM t WHERE b = 1e",
            "SELECT a FROM t WHERE b = 0x1F",
        ],
    )
    def test_malformed_literals_punt_and_error(self, sql):
        # The lexer rejects these as malformed numeric literals; the
        # scanner must return None (its number regex refuses to match a
        # trailing bare exponent / identifier-start follow) so that the
        # full parser delivers the identical verdict.
        assert fingerprint_statement(sql) is None
        with pytest.raises(SqlError):
            parse(sql)

    def test_double_dot_tokenizes_identically(self):
        # ``1..2`` scans as number-dot-number on both sides; the parser
        # then rejects the trailing input.  The scanner may produce a
        # key, but the statement never enters the cache as a template —
        # it is stored as a parse failure.
        sql = "SELECT 1..2 FROM t"
        with pytest.raises(SqlError):
            parse(sql)
        cache = TemplateCache()
        rec = record(0, sql)
        assert cache.fetch(rec) is None
        try:
            fresh_parse(rec)
        except SqlError as error:
            cache.store(sql, (error, "parse_error"))
        hit = cache.fetch(record(1, sql))
        assert isinstance(hit, tuple)
