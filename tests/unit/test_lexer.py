"""Unit tests for the SQL lexer."""

import pytest

from repro.sqlparser.errors import LexerError
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import TokenKind


def kinds(sql):
    return [token.kind for token in tokenize(sql)]


def values(sql):
    return [token.value for token in tokenize(sql)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only_yields_only_eof(self):
        assert len(tokenize("  \t\n  ")) == 1

    def test_keywords_are_uppercased(self):
        assert values("select from where") == ["SELECT", "FROM", "WHERE"]

    def test_identifier_case_is_preserved(self):
        tokens = tokenize("PhotoPrimary")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].value == "PhotoPrimary"

    def test_identifier_with_underscore_and_digits(self):
        tokens = tokenize("rowc_g2")
        assert tokens[0].value == "rowc_g2"

    def test_temp_table_hash_identifier(self):
        tokens = tokenize("#temp")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].value == "#temp"

    def test_punctuation(self):
        assert kinds("(,.;)")[:-1] == [
            TokenKind.LPAREN,
            TokenKind.COMMA,
            TokenKind.DOT,
            TokenKind.SEMICOLON,
            TokenKind.RPAREN,
        ]


class TestNumbers:
    @pytest.mark.parametrize(
        "text", ["0", "42", "3.14", ".5", "1e10", "1.5e-3", "2E+4"]
    )
    def test_valid_numbers(self, text):
        tokens = tokenize(text)
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].value == text

    def test_number_followed_by_letter_is_an_error(self):
        with pytest.raises(LexerError):
            tokenize("12abc")

    def test_dot_without_digits_is_a_dot_token(self):
        tokens = tokenize("a.b")
        assert tokens[1].kind is TokenKind.DOT

    def test_exponent_without_digits_is_not_consumed(self):
        # `1e` alone: the `e` is a malformed trailing identifier start
        with pytest.raises(LexerError):
            tokenize("1e")


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize("'sales'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == "sales"

    def test_escaped_quote(self):
        tokens = tokenize("'O''Brien'")
        assert tokens[0].value == "O'Brien"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError, match="unterminated string"):
            tokenize("'oops")

    def test_string_keeps_case(self):
        assert tokenize("'MiXeD'")[0].value == "MiXeD"


class TestQuotedIdentifiers:
    def test_bracket_identifier(self):
        tokens = tokenize("[Full Name]")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].value == "Full Name"

    def test_double_quoted_identifier(self):
        assert tokenize('"order"')[0].kind is TokenKind.IDENTIFIER

    def test_unterminated_bracket_raises(self):
        with pytest.raises(LexerError):
            tokenize("[oops")


class TestVariables:
    def test_variable(self):
        tokens = tokenize("@ra")
        assert tokens[0].kind is TokenKind.VARIABLE
        assert tokens[0].value == "ra"

    def test_system_variable(self):
        assert tokenize("@@rowcount")[0].value == "@rowcount"

    def test_bare_at_sign_raises(self):
        with pytest.raises(LexerError):
            tokenize("@ ")


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "+", "-", "*", "/", "%"])
    def test_single_char_operators(self, op):
        tokens = tokenize(op)
        assert tokens[0].kind is TokenKind.OPERATOR
        assert tokens[0].value == op

    @pytest.mark.parametrize("op", ["<>", "!=", "<=", ">=", "||"])
    def test_multi_char_operators(self, op):
        tokens = tokenize(op)
        assert tokens[0].value == op

    def test_adjacent_operators_split_greedily(self):
        assert values("a<=b") == ["a", "<=", "b"]


class TestComments:
    def test_line_comment_is_skipped(self):
        assert values("SELECT -- comment\n a") == ["SELECT", "a"]

    def test_block_comment_is_skipped(self):
        assert values("SELECT /* x */ a") == ["SELECT", "a"]

    def test_block_comment_spanning_lines(self):
        assert values("SELECT /* x\ny */ a") == ["SELECT", "a"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError, match="unterminated block comment"):
            tokenize("SELECT /* oops")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT\n  name")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(LexerError) as exc_info:
            tokenize("SELECT ~")
        assert exc_info.value.line == 1
        assert exc_info.value.column == 8

    def test_unexpected_character(self):
        with pytest.raises(LexerError, match="unexpected character"):
            tokenize("a ? b")
