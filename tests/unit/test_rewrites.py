"""Unit tests for the Stifle/SNC rewrite rules (Section 4.2)."""

import pytest

from repro.antipatterns import DetectionContext, StifleDetector
from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log
from repro.rewrite import (
    RewriteNotApplicable,
    rewrite_df_stifle,
    rewrite_ds_stifle,
    rewrite_dw_stifle,
    rewrite_snc_statement,
)
from repro.sqlparser import format_sql, parse

KEYS = frozenset({"empid", "id", "objid"})


def queries_for(statements, user="u"):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=float(i) * 0.1, user=user)
        for i, sql in enumerate(statements)
    )
    return parse_log(log).queries


class TestDwRewrite:
    def test_example_9_to_10(self):
        """The paper's Example 9 rewrites to Example 10 (modulo key column
        ordering, which the paper also adds)."""
        queries = queries_for(
            [
                "SELECT name FROM Employee WHERE empId = 8",
                "SELECT name FROM Employee WHERE empId = 1",
            ]
        )
        merged = rewrite_dw_stifle(queries)
        assert format_sql(merged) == (
            "SELECT empId, name FROM Employee WHERE empId IN (8, 1)"
        )

    def test_key_column_not_duplicated(self):
        queries = queries_for(
            [
                "SELECT empId, name FROM Employee WHERE empId = 8",
                "SELECT empId, name FROM Employee WHERE empId = 1",
            ]
        )
        merged = rewrite_dw_stifle(queries)
        assert format_sql(merged).count("empId,") == 1

    def test_star_projection_covers_key(self):
        queries = queries_for(
            [
                "SELECT * FROM t WHERE id = 1",
                "SELECT * FROM t WHERE id = 2",
            ]
        )
        merged = rewrite_dw_stifle(queries)
        assert format_sql(merged) == "SELECT * FROM t WHERE id IN (1, 2)"

    def test_duplicate_values_deduped(self):
        queries = queries_for(
            [
                "SELECT name FROM e WHERE id = 5",
                "SELECT name FROM e WHERE id = 5",
                "SELECT name FROM e WHERE id = 6",
            ]
        )
        merged = rewrite_dw_stifle(queries)
        assert format_sql(merged).endswith("IN (5, 6)")

    def test_single_distinct_value_stays_equality(self):
        queries = queries_for(
            ["SELECT name FROM e WHERE id = 5", "SELECT name FROM e WHERE id = 5"]
        )
        merged = rewrite_dw_stifle(queries)
        assert format_sql(merged).endswith("WHERE id = 5")

    def test_string_constants(self):
        queries = queries_for(
            [
                "SELECT text FROM dbobjects WHERE name = 'a'",
                "SELECT text FROM dbobjects WHERE name = 'b'",
            ]
        )
        merged = rewrite_dw_stifle(queries)
        assert "IN ('a', 'b')" in format_sql(merged)

    def test_fewer_than_two_queries_rejected(self):
        with pytest.raises(RewriteNotApplicable):
            rewrite_dw_stifle(queries_for(["SELECT a FROM t WHERE id = 1"]))

    def test_mixed_filter_columns_rejected(self):
        queries = queries_for(
            ["SELECT a FROM t WHERE id = 1", "SELECT a FROM t WHERE objid = 2"]
        )
        with pytest.raises(RewriteNotApplicable):
            rewrite_dw_stifle(queries)


class TestDsRewrite:
    def test_example_11_to_12(self):
        queries = queries_for(
            [
                "SELECT name FROM Employee WHERE empId = 8",
                "SELECT address, phone FROM Employee WHERE empId = 8",
            ]
        )
        merged = rewrite_ds_stifle(queries)
        assert format_sql(merged) == (
            "SELECT name, address, phone FROM Employee WHERE empId = 8"
        )

    def test_overlapping_select_lists_deduped(self):
        queries = queries_for(
            [
                "SELECT name, address FROM e WHERE id = 8",
                "SELECT address, phone FROM e WHERE id = 8",
            ]
        )
        merged = rewrite_ds_stifle(queries)
        assert format_sql(merged) == (
            "SELECT name, address, phone FROM e WHERE id = 8"
        )

    def test_where_preserved(self):
        queries = queries_for(
            ["SELECT a FROM t WHERE id = 8", "SELECT b FROM t WHERE id = 8"]
        )
        assert format_sql(rewrite_ds_stifle(queries)).endswith("WHERE id = 8")


class TestDfRewrite:
    def test_example_13_to_14(self):
        queries = queries_for(
            [
                "SELECT name FROM Employee WHERE empId = 8",
                "SELECT address FROM EmployeeInfo WHERE empId = 8",
            ]
        )
        merged = rewrite_df_stifle(queries)
        assert format_sql(merged) == (
            "SELECT t0.name, t1.address FROM Employee AS t0 "
            "INNER JOIN EmployeeInfo AS t1 ON t0.empId = t1.empId "
            "WHERE t0.empId = 8"
        )

    def test_three_tables_chain_joins(self):
        queries = queries_for(
            [
                "SELECT a FROM t1 WHERE id = 8",
                "SELECT b FROM t2 WHERE id = 8",
                "SELECT c FROM t3 WHERE id = 8",
            ]
        )
        text = format_sql(rewrite_df_stifle(queries))
        assert text.count("INNER JOIN") == 2
        assert "t0.id = t2.id" in text

    def test_derived_table_rejected(self):
        queries = queries_for(
            [
                "SELECT a FROM (SELECT a, id FROM t) s WHERE id = 8",
                "SELECT b FROM u WHERE id = 8",
            ]
        )
        with pytest.raises(RewriteNotApplicable):
            rewrite_df_stifle(queries)

    def test_grouped_query_rejected(self):
        queries = queries_for(
            [
                "SELECT count(*) FROM t GROUP BY x",
                "SELECT b FROM u WHERE id = 8",
            ]
        )
        with pytest.raises(RewriteNotApplicable):
            rewrite_df_stifle(queries)

    def test_single_distinct_table_rejected(self):
        queries = queries_for(
            ["SELECT a FROM t WHERE id = 8", "SELECT b FROM t WHERE id = 8"]
        )
        with pytest.raises(RewriteNotApplicable):
            rewrite_df_stifle(queries)


class TestSncRewrite:
    @pytest.mark.parametrize(
        "original,expected",
        [
            (
                "SELECT * FROM Bugs WHERE assigned_to = NULL",
                "SELECT * FROM Bugs WHERE assigned_to IS NULL",
            ),
            (
                "SELECT * FROM Bugs WHERE assigned_to <> NULL",
                "SELECT * FROM Bugs WHERE assigned_to IS NOT NULL",
            ),
            (
                "SELECT * FROM Bugs WHERE assigned_to != NULL",
                "SELECT * FROM Bugs WHERE assigned_to IS NOT NULL",
            ),
            (
                "SELECT * FROM Bugs WHERE NULL = assigned_to",
                "SELECT * FROM Bugs WHERE assigned_to IS NULL",
            ),
            (
                "SELECT * FROM Bugs WHERE a = 1 AND b = NULL",
                "SELECT * FROM Bugs WHERE a = 1 AND b IS NULL",
            ),
        ],
    )
    def test_section_5_4_rewrites(self, original, expected):
        assert format_sql(rewrite_snc_statement(parse(original))) == expected

    def test_non_null_comparisons_untouched(self):
        tree = parse("SELECT * FROM t WHERE a = 1")
        assert rewrite_snc_statement(tree) == tree

    def test_null_to_null_untouched(self):
        tree = parse("SELECT * FROM t WHERE NULL = NULL")
        assert rewrite_snc_statement(tree) == tree

    def test_having_clause_rewritten(self):
        tree = parse("SELECT a FROM t GROUP BY a HAVING max(b) = NULL")
        assert "IS NULL" in format_sql(rewrite_snc_statement(tree))

    def test_select_list_comparison_untouched(self):
        tree = parse("SELECT CASE WHEN a = NULL THEN 1 ELSE 0 END FROM t")
        # only WHERE/HAVING are rewritten; a CASE in the SELECT list stays
        assert rewrite_snc_statement(tree) == tree
