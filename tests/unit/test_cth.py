"""Unit tests for CTH detection (Definition 15, Section 6.6)."""

import pytest

from repro.antipatterns import (
    CTH_CANDIDATE,
    CthDetector,
    DetectionContext,
    classify_candidate,
    cth_census,
)
from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log


def blocks_for(timed_statements, user="u"):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts) in enumerate(timed_statements)
    )
    return build_blocks(parse_log(log).queries)


def detect(timed_statements, **kwargs):
    return CthDetector(**kwargs).detect(
        blocks_for(timed_statements), DetectionContext()
    )


FIRST = "SELECT E.Id FROM Employees E WHERE E.department = 'sales'"
FOLLOW = "SELECT name FROM Employees WHERE id = {}"


class TestDetection:
    def test_paper_table2_shape(self):
        instances = detect(
            [(FIRST, 0.0)] + [(FOLLOW.format(i), float(i)) for i in (1, 2, 3)]
        )
        assert len(instances) == 1
        assert instances[0].label == CTH_CANDIDATE
        assert len(instances[0].queries) == 4
        assert not instances[0].solvable

    def test_follow_column_must_match_first_output(self):
        instances = detect(
            [
                ("SELECT name FROM Employees WHERE department = 'x'", 0.0),
                ("SELECT a FROM t WHERE id = 5", 1.0),  # id not in outputs
            ]
        )
        assert instances == []

    def test_star_output_matches_any_follow_column(self):
        instances = detect(
            [
                ("SELECT * FROM dbo.fGetNearestObjEq(1, 2, 3)", 0.0),
                ("SELECT plate FROM specobjall WHERE specobjid = 7", 0.0),
            ]
        )
        assert len(instances) == 1

    def test_same_template_follow_is_not_cth(self):
        """Definition 15's first axiom: SQ1 ≠ SQ2."""
        instances = detect(
            [(FOLLOW.format(1), 0.0), (FOLLOW.format(2), 0.5)]
        )
        assert instances == []

    def test_alias_output_matches(self):
        instances = detect(
            [
                ("SELECT empId AS id FROM e WHERE dept = 'x'", 0.0),
                ("SELECT name FROM e WHERE id = 5", 0.2),
            ]
        )
        assert len(instances) == 1

    def test_follow_needs_single_equality(self):
        instances = detect(
            [
                (FIRST, 0.0),
                ("SELECT name FROM e WHERE id = 1 AND x = 2", 0.2),
            ]
        )
        assert instances == []

    def test_chained_hunts_are_all_found(self):
        instances = detect(
            [
                ("SELECT id FROM a WHERE k = 'x'", 0.0),
                ("SELECT pid AS id2 FROM b WHERE id = 1", 0.1),
                ("SELECT z FROM c WHERE id2 = 9", 0.2),
            ]
        )
        assert len(instances) == 2

    def test_cap_on_followups(self):
        timed = [(FIRST, 0.0)] + [
            (FOLLOW.format(i), 0.1 * i) for i in range(1, 8)
        ]
        instances = CthDetector().detect(
            blocks_for(timed), DetectionContext(cth_max_followups=3)
        )
        assert len(instances[0].queries) == 4  # first + capped 3


class TestOracle:
    def test_zero_think_time_is_real(self):
        instance = detect([(FIRST, 0.0), (FOLLOW.format(1), 0.5)])[0]
        assert classify_candidate(instance, think_time=2.0)
        assert instance.details["oracle_real"] is True

    def test_long_think_time_is_false(self):
        instance = detect([(FIRST, 0.0), (FOLLOW.format(1), 27.0)])[0]
        assert not classify_candidate(instance, think_time=2.0)
        assert instance.details["oracle_real"] is False


class TestCensus:
    def test_census_groups_by_template_pair(self):
        instances = detect(
            [(FIRST, 0.0), (FOLLOW.format(1), 0.5)]
        ) + detect(
            [(FIRST, 100.0), (FOLLOW.format(2), 100.5)]
        )
        census = cth_census(instances)
        assert len(census) == 1
        assert census[0].frequency == 2

    def test_census_majority_vote(self):
        real = detect([(FIRST, 0.0), (FOLLOW.format(1), 0.1)])
        false1 = detect([(FIRST, 0.0), (FOLLOW.format(2), 50.0)])
        false2 = detect([(FIRST, 0.0), (FOLLOW.format(3), 60.0)])
        census = cth_census(real + false1 + false2)
        assert census[0].oracle_real is False

    def test_census_user_popularity(self):
        a = CthDetector().detect(
            blocks_for([(FIRST, 0.0), (FOLLOW.format(1), 0.5)], user="u1"),
            DetectionContext(),
        )
        b = CthDetector().detect(
            blocks_for([(FIRST, 0.0), (FOLLOW.format(2), 0.5)], user="u2"),
            DetectionContext(),
        )
        census = cth_census(a + b)
        assert census[0].user_popularity == 2

    def test_census_ignores_other_labels(self):
        assert cth_census([]) == []
