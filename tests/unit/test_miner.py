"""Unit tests for pattern mining (blocks, periodic segmentation)."""

import pytest

from repro.log import LogRecord, QueryLog
from repro.patterns import MinerConfig, build_blocks, mine, segment_block
from repro.patterns.models import Block, ParsedQuery
from repro.pipeline import parse_log


def parsed(entries):
    """entries: (sql, timestamp, user) triples -> parsed queries."""
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts, user) in enumerate(entries)
    )
    return parse_log(log).queries


A = "SELECT a FROM t WHERE id = {}"
B = "SELECT b FROM t WHERE id = {}"
C = "SELECT c FROM t WHERE id = {}"


class TestBlocks:
    def test_single_user_one_block(self):
        queries = parsed([(A.format(i), float(i), "u") for i in range(4)])
        blocks = build_blocks(queries)
        assert len(blocks) == 1
        assert len(blocks[0]) == 4

    def test_gap_splits_block(self):
        queries = parsed(
            [(A.format(1), 0.0, "u"), (A.format(2), 1000.0, "u")]
        )
        blocks = build_blocks(queries, MinerConfig(block_gap=300.0))
        assert len(blocks) == 2

    def test_users_get_separate_blocks(self):
        queries = parsed([(A.format(1), 0.0, "u1"), (A.format(2), 1.0, "u2")])
        blocks = build_blocks(queries)
        assert {block.user for block in blocks} == {"u1", "u2"}

    def test_interleaved_users_keep_per_user_order(self):
        queries = parsed(
            [
                (A.format(1), 0.0, "u1"),
                (B.format(1), 0.5, "u2"),
                (A.format(2), 1.0, "u1"),
            ]
        )
        blocks = {block.user: block for block in build_blocks(queries)}
        assert [q.record.seq for q in blocks["u1"].queries] == [0, 2]

    def test_empty_input(self):
        assert build_blocks([]) == []

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MinerConfig(block_gap=0)
        with pytest.raises(ValueError):
            MinerConfig(max_period=0)


class TestSegmentation:
    def _block(self, sqls):
        queries = parsed([(sql, float(i), "u") for i, sql in enumerate(sqls)])
        return build_blocks(queries)[0]

    def test_repeated_template_is_one_run(self):
        block = self._block([A.format(i) for i in range(5)])
        runs = segment_block(block)
        assert len(runs) == 1
        assert runs[0].repeats == 5
        assert len(runs[0].unit) == 1

    def test_alternating_pair_is_period_two(self):
        block = self._block([A.format(1), B.format(1), A.format(2), B.format(2)])
        runs = segment_block(block)
        assert len(runs) == 1
        assert len(runs[0].unit) == 2
        assert runs[0].repeats == 2

    def test_tie_prefers_short_period(self):
        # AAAA could be (A) x4 or (A,A) x2 — short period must win.
        block = self._block([A.format(i) for i in range(4)])
        runs = segment_block(block)
        assert len(runs[0].unit) == 1

    def test_non_periodic_sequence_yields_singletons(self):
        block = self._block([A.format(1), B.format(1), C.format(1)])
        runs = segment_block(block)
        assert len(runs) == 3
        assert all(run.repeats == 1 for run in runs)

    def test_run_followed_by_tail(self):
        block = self._block([A.format(1), A.format(2), A.format(3), B.format(1)])
        runs = segment_block(block)
        assert runs[0].repeats == 3
        assert runs[1].unit != runs[0].unit

    def test_max_period_limits_unit_length(self):
        sqls = [A.format(1), B.format(1), C.format(1)] * 2
        block = self._block(sqls)
        runs = segment_block(block, MinerConfig(max_period=2))
        assert all(len(run.unit) <= 2 for run in runs)

    def test_triple_period(self):
        sqls = [A.format(1), B.format(1), C.format(1)] * 3
        block = self._block(sqls)
        runs = segment_block(block)
        assert len(runs) == 1
        assert len(runs[0].unit) == 3
        assert runs[0].repeats == 3

    def test_cycles_split_queries_per_repeat(self):
        block = self._block([A.format(1), B.format(1), A.format(2), B.format(2)])
        run = segment_block(block)[0]
        cycles = run.cycles()
        assert len(cycles) == 2
        assert all(len(cycle) == 2 for cycle in cycles)


class TestMine:
    def test_instances_count_cycles(self):
        queries = parsed([(A.format(i), float(i), "u") for i in range(6)])
        result = mine(queries)
        assert len(result.instances) == 6  # one instance per cycle

    def test_instances_cover_all_queries_exactly_once(self):
        queries = parsed(
            [(A.format(1), 0.0, "u"), (B.format(1), 1.0, "u"), (A.format(2), 2.0, "u"),
             (B.format(2), 3.0, "u"), (C.format(9), 4.0, "u")]
        )
        result = mine(queries)
        covered = [
            q.record.seq for inst in result.instances for q in inst.queries
        ]
        assert sorted(covered) == [0, 1, 2, 3, 4]

    def test_deterministic(self):
        queries = parsed([(A.format(i % 3), float(i), "u") for i in range(9)])
        r1 = mine(queries)
        r2 = mine(queries)
        assert [i.unit for i in r1.instances] == [i.unit for i in r2.instances]


class TestBlockCaches:
    def _block(self, sqls):
        queries = parsed([(sql, float(i), "u") for i, sql in enumerate(sqls)])
        return build_blocks(queries)[0]

    def test_template_ids_memoized(self):
        block = self._block([A.format(1), B.format(1)])
        first = block.template_ids()
        assert block.template_ids() is first
        assert first == tuple(q.template_id for q in block.queries)

    def test_interned_ids_memoized(self):
        block = self._block([A.format(1), B.format(1), A.format(2)])
        first = block.interned_ids()
        assert block.interned_ids() is first
        assert first == tuple(q.interned_id for q in block.queries)

    def test_interned_ids_rejects_uninterned_queries(self):
        import dataclasses

        block = self._block([A.format(1), B.format(1)])
        stripped = Block(
            user=block.user,
            queries=tuple(
                dataclasses.replace(q, interned_id=-1) for q in block.queries
            ),
        )
        assert stripped.interned_ids() is None
        # ...but the local-id fallback still yields a dense alphabet.
        local = stripped.local_ids()
        assert sorted(set(local)) == list(range(len(set(local))))
        assert stripped.local_ids() is local

    def test_caches_do_not_affect_equality_or_pickling(self):
        import pickle

        left = self._block([A.format(1), B.format(1)])
        right = self._block([A.format(1), B.format(1)])
        left.template_ids()
        left.interned_ids()
        left.local_ids()
        assert left == right
        clone = pickle.loads(pickle.dumps(left))
        assert clone == left
        assert clone.template_ids() == left.template_ids()


class TestLazyInstances:
    def test_instance_count_without_materialization(self):
        queries = parsed([(A.format(i % 2), float(i), "u") for i in range(8)])
        result = mine(queries)
        assert result.instance_count == sum(run.repeats for run in result.runs)
        assert result._instances is None  # count alone must stay lazy

    def test_instances_are_cached(self):
        queries = parsed([(A.format(i), float(i), "u") for i in range(4)])
        result = mine(queries)
        first = result.instances
        assert result.instances is first
        assert result.instance_count == len(first)

    def test_instances_match_run_cycles(self):
        queries = parsed(
            [(A.format(1), 0.0, "u"), (B.format(1), 1.0, "u"),
             (A.format(2), 2.0, "u"), (B.format(2), 3.0, "u"),
             (C.format(9), 4.0, "u")]
        )
        result = mine(queries)
        expected = [
            (run.unit, tuple(cycle))
            for run in result.runs
            for cycle in run.cycles()
        ]
        assert [
            (inst.unit, inst.queries) for inst in result.instances
        ] == expected
