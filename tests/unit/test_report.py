"""Unit tests for CSV report export."""

import csv
import json

import pytest

from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.patterns import SwsConfig
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.pipeline.report import export_report

KEYS = frozenset({"empid", "id", "objid"})


@pytest.fixture()
def small_result():
    statements = (
        ["SELECT E.Id FROM Employees E WHERE E.department = 'sales'"]
        + [f"SELECT name FROM Employees WHERE id = {i}" for i in (12, 15, 16)]
        + ["SELECT * FROM Bugs WHERE assigned_to = NULL"]
    )
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=float(i), user="u", ip="1.1.1.1")
        for i, sql in enumerate(statements)
    )
    config = PipelineConfig(
        detection=DetectionContext(key_columns=KEYS), sws=SwsConfig()
    )
    return CleaningPipeline(config).run(log)


def read(path):
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))


class TestExportReport:
    def test_all_files_written(self, small_result, tmp_path):
        written = export_report(small_result, tmp_path / "report")
        expected = {
            "overview",
            "patterns",
            "antipatterns",
            "cth_candidates",
            "sws",
            "solved",
            "metrics",
        }
        assert set(written) == expected
        for path in written.values():
            assert path.exists()

    def test_metrics_json_carries_stage_ledger(self, small_result, tmp_path):
        written = export_report(small_result, tmp_path)
        metrics = json.loads(written["metrics"].read_text(encoding="utf-8"))
        stages = metrics["stages"]
        assert set(stages) >= {"dedup", "parse", "mine", "detect", "solve"}
        assert stages["dedup"]["counters"]["records_in"] == 5
        assert stages["solve"]["counters"]["records_out"] == len(
            small_result.clean_log
        )

    def test_overview_contents(self, small_result, tmp_path):
        written = export_report(small_result, tmp_path)
        rows = read(written["overview"])
        properties = {row["property"] for row in rows}
        assert "Size of original query log" in properties

    def test_patterns_ranked(self, small_result, tmp_path):
        written = export_report(small_result, tmp_path)
        rows = read(written["patterns"])
        assert rows
        frequencies = [int(row["frequency"]) for row in rows]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_antipatterns_census(self, small_result, tmp_path):
        written = export_report(small_result, tmp_path)
        labels = {row["label"] for row in read(written["antipatterns"])}
        assert "DW-Stifle" in labels
        assert "SNC" in labels

    def test_solved_rows_carry_sql(self, small_result, tmp_path):
        written = export_report(small_result, tmp_path)
        rows = read(written["solved"])
        assert any("IN (12, 15, 16)" in row["replacement_sql"] for row in rows)

    def test_cth_candidates_have_verdict(self, small_result, tmp_path):
        written = export_report(small_result, tmp_path)
        rows = read(written["cth_candidates"])
        assert rows
        assert rows[0]["oracle_real"] in ("0", "1")

    def test_directory_created(self, small_result, tmp_path):
        target = tmp_path / "deep" / "nested"
        export_report(small_result, target)
        assert target.exists()

    def test_no_quarantine_file_for_clean_strict_run(
        self, small_result, tmp_path
    ):
        written = export_report(small_result, tmp_path)
        assert "quarantine" not in written
        assert not (tmp_path / "quarantine.json").exists()

    def test_quarantine_json_written_under_quarantine_policy(self, tmp_path):
        statements = [
            f"SELECT name FROM Employees WHERE id = {i}" for i in (12, 15, 16)
        ]
        records = [
            LogRecord(seq=i, sql=sql, timestamp=float(i), user="u")
            for i, sql in enumerate(statements)
        ]
        records.append(
            LogRecord(seq=99, sql="SELEKT junk !!", timestamp=99.0, user="u")
        )
        config = PipelineConfig(
            detection=DetectionContext(key_columns=KEYS),
            error_policy="quarantine",
        )
        result = CleaningPipeline(config).run(QueryLog(records))
        written = export_report(result, tmp_path)
        payload = json.loads(written["quarantine"].read_text(encoding="utf-8"))
        assert payload["error_policy"] == "quarantine"
        assert payload["count"] == 1
        assert payload["by_reason"] == {"parse_error": 1}
        (entry,) = payload["entries"]
        assert entry["stage"] == "parse"
        assert entry["record"]["seq"] == 99
