"""Unit tests for the zero-copy parallel data plane.

Four pieces, bottom up: the in-memory shard codec
(:func:`repro.store.columnar.encode_shard` and friends), the
template-cache seed transport
(:meth:`repro.skeleton.cache.TemplateCache.export_seed`), the warm
:class:`repro.pipeline.parallel.WorkerPool` registry, and the adaptive
shard planner — plus an end-to-end check that a seeded pool's workers
really start their parse caches warm.
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.log import LogRecord, QueryLog
from repro.obs import Recorder
from repro.pipeline import ExecutionConfig, PipelineConfig
from repro.pipeline.framework import parse_log
from repro.pipeline.parallel import (
    WorkerPool,
    discard_worker_pool,
    get_worker_pool,
    set_worker_seed,
    shard_records,
    shutdown_worker_pools,
)
from repro.skeleton.cache import TemplateCache
from repro.store.columnar import decode_shard, encode_shard, shard_record_count


def record(seq, sql, user="u", **kwargs):
    kwargs.setdefault("timestamp", float(seq))
    return LogRecord(seq=seq, sql=sql, user=user, **kwargs)


def sample_records(count=12, users=3):
    return [
        record(
            i,
            f"SELECT name FROM Employee WHERE empId = {i % 5}",
            user=f"user{i % users}",
        )
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Shard codec


class TestShardCodec:
    def test_empty_shard_roundtrips(self):
        buffer = encode_shard([])
        assert shard_record_count(buffer) == 0
        assert list(decode_shard(buffer)) == []

    def test_roundtrip_preserves_order_and_fields(self):
        records = sample_records()
        restored = list(decode_shard(encode_shard(records)))
        assert restored == records

    def test_templatable_text_beats_pickling_on_repetition(self):
        # The codec's point: repeated templates collapse into the
        # dictionary, so the buffer grows sublinearly in records.
        import pickle

        records = sample_records(count=400, users=8)
        buffer = encode_shard(records)
        assert len(buffer) < len(pickle.dumps(records))

    def test_verbatim_fallback_statements_survive(self):
        records = [
            record(0, "not sql at all"),
            record(1, "SELECT '\x00' FROM t"),  # the marker byte itself
            record(2, ""),
            record(3, "SELECT a FROM t WHERE b = 'o''brien'"),
        ]
        assert list(decode_shard(encode_shard(records))) == records

    def test_oddball_records_survive(self):
        records = [
            record(0, None),
            record(1, 12345),
            record(2, "SELECT 1 FROM T", timestamp=7),  # int timestamp
            record(3, "SELECT 2 FROM T", rows=2**70),  # beyond int64
            record(4, "SELECT 3 FROM T", user=None),
        ]
        restored = list(decode_shard(encode_shard(records)))
        assert restored == records
        assert type(restored[2].timestamp) is int

    def test_nan_timestamp_survives(self):
        records = [record(0, "SELECT 1 FROM T", timestamp=float("nan"))]
        (restored,) = decode_shard(encode_shard(records))
        assert math.isnan(restored.timestamp)

    def test_non_shard_buffer_is_rejected(self):
        with pytest.raises(ValueError):
            shard_record_count(b"XXXX" + b"\x00" * 64)
        with pytest.raises(ValueError):
            list(decode_shard(b"XXXX" + b"\x00" * 64))


# ----------------------------------------------------------------------
# Template-cache seed transport


def _seeded_cache(records):
    cache = TemplateCache()
    parse_log(records, cache=cache, recorder=Recorder())
    return cache


class TestCacheSeed:
    def test_from_seed_restores_templates_with_zeroed_counters(self):
        records = sample_records()
        cache = _seeded_cache(records)
        assert len(cache) > 0 and cache.misses > 0

        warm = TemplateCache.from_seed(cache.export_seed())
        assert len(warm) == len(cache)
        assert warm.key_entries == cache.key_entries
        assert (warm.hits, warm.misses, warm.evictions) == (0, 0, 0)
        # every statement the donor saw is a hit in the restored cache
        for rec in records:
            assert warm.fetch(rec) is not None
        assert warm.misses == 0

    def test_from_seed_trims_to_smaller_capacity(self):
        cache = _seeded_cache(
            [
                record(i, f"SELECT c{i} FROM t{i} WHERE a = {i}")
                for i in range(6)
            ]
        )
        assert len(cache) == 6
        warm = TemplateCache.from_seed(cache.export_seed(), max_entries=2)
        assert len(warm) <= 2
        assert warm.key_entries <= 2

    def test_from_seed_rejects_garbage(self):
        import pickle

        with pytest.raises(Exception):
            TemplateCache.from_seed(pickle.dumps({"not": "a cache"}))


# ----------------------------------------------------------------------
# Warm pool registry


@pytest.fixture
def pool_registry():
    shutdown_worker_pools()
    yield
    set_worker_seed(None)
    shutdown_worker_pools()


class TestWorkerPool:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_executor_is_lazy_and_generation_counts(self, pool_registry):
        pool = WorkerPool(2)
        assert not pool.alive
        assert pool.generation == 0
        first = pool.executor
        assert pool.alive
        assert pool.generation == 1
        assert pool.executor is first  # no re-provision on access
        rebuilt = pool.rebuild()
        assert rebuilt is not first
        assert pool.generation == 2
        pool.shutdown()
        assert not pool.alive
        # a shut-down pool is reusable: next access provisions again
        assert pool.executor is not None
        assert pool.generation == 3
        pool.shutdown()

    def test_registry_returns_one_pool_per_worker_count(self, pool_registry):
        pool = get_worker_pool(2)
        assert get_worker_pool(2) is pool
        assert get_worker_pool(3) is not pool
        discard_worker_pool(2)
        assert get_worker_pool(2) is not pool

    def test_shutdown_worker_pools_clears_the_registry(self, pool_registry):
        pool = get_worker_pool(2)
        pool.executor  # provision
        shutdown_worker_pools()
        assert not pool.alive
        assert get_worker_pool(2) is not pool


# ----------------------------------------------------------------------
# Adaptive shard planning


class TestAdaptiveSharding:
    def test_single_worker_gets_a_single_shard(self):
        records = sample_records(count=200, users=8)
        assert len(shard_records(records, 1, 0)) == 1

    def test_fanout_targets_about_twice_the_workers(self):
        records = sample_records(count=4000, users=64)
        for workers in (2, 4):
            shards = shard_records(records, workers, 0)
            assert workers < len(shards) <= 2 * workers + 1

    def test_adaptive_shards_are_balanced(self):
        records = sample_records(count=4000, users=64)
        shards = shard_records(records, 4, 0)
        sizes = [len(shard) for shard in shards]
        # the packing budget is ceil(total/target): no shard more than
        # one bucket beyond the budget, none pathologically small
        assert max(sizes) <= 2 * min(sizes) + max(
            len(records) // 64, 1
        )

    def test_explicit_chunk_size_keeps_legacy_packing(self):
        records = sample_records(count=300, users=16)
        shards = shard_records(records, 4, 40)
        # a shard only exceeds the bound when a single user demands it
        user_max = max(
            sum(1 for r in records if r.user == f"user{u}") for u in range(16)
        )
        assert all(len(s) <= max(40, user_max) for s in shards)
        assert len(shards) >= len(records) // 40


# ----------------------------------------------------------------------
# Seeded pools, end to end


class TestSeededPoolEndToEnd:
    def test_seeded_workers_start_their_parse_cache_warm(self, pool_registry):
        records = [
            record(
                i,
                f"SELECT name FROM Employee WHERE empId = {i % 9}",
                user=f"user{i % 8}",
            )
            for i in range(160)
        ]
        log = QueryLog(records)
        execution = ExecutionConfig(mode="parallel", workers=2, chunk_size=40)

        cold = repro.clean(log, PipelineConfig(), execution=execution)
        assert cold.parallel_stats.stats.parse_cache_misses > 0

        set_worker_seed(_seeded_cache(records))
        warm = repro.clean(log, PipelineConfig(), execution=execution)
        pstats = warm.parallel_stats.stats
        assert pstats.parse_cache_misses == 0
        assert pstats.parse_cache_hits > 0
        # seeding is a pure speed knob: the output is byte-identical
        assert warm.clean_log == cold.clean_log
        assert warm.metrics.comparable() == cold.metrics.comparable()

    def test_mismatched_seed_knobs_are_ignored(self, pool_registry):
        records = sample_records(count=120, users=8)
        log = QueryLog(records)
        # the seed declares fold_variables=True; the run uses defaults —
        # workers must fall back to a cold cache, not serve stale skeletons
        set_worker_seed(_seeded_cache(records), fold_variables=True)
        result = repro.clean(
            log,
            PipelineConfig(),
            execution=ExecutionConfig(mode="parallel", workers=2, chunk_size=30),
        )
        assert result.parallel_stats.stats.parse_cache_misses > 0
        assert result.metrics.conservation_violations() == []
