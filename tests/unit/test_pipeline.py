"""Unit tests for the cleaning pipeline framework and statistics."""

import pytest

from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.patterns import SwsConfig
from repro.pipeline import (
    CleaningPipeline,
    PipelineConfig,
    clean,
    parse_log,
)
from repro.pipeline.statistics import census_by_label

KEYS = frozenset({"empid", "id", "objid"})


def make_log(statements, user="u", spacing=0.2):
    return QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=i * spacing, user=user)
        for i, sql in enumerate(statements)
    )


class TestParseStage:
    def test_classification_of_failures(self):
        log = make_log(
            [
                "SELECT a FROM t WHERE x = 1",
                "INSERT INTO t VALUES (1)",
                "SELECT FROM WHERE",
            ]
        )
        stage = parse_log(log)
        assert len(stage.queries) == 1
        assert len(stage.non_select) == 1
        assert len(stage.syntax_errors) == 1
        assert "expected" in stage.syntax_errors[0][1]

    def test_parsed_log_preserves_records(self):
        log = make_log(["SELECT a FROM t"])
        stage = parse_log(log)
        assert stage.parsed_log[0] == log[0]

    def test_empty_log(self):
        stage = parse_log(QueryLog())
        assert stage.queries == []


class TestPipeline:
    def test_stages_chain(self):
        statements = (
            ["SELECT a FROM t WHERE x > 0"]  # ordinary query
            + ["SELECT a FROM t WHERE x > 0"]  # duplicate (same ts window)
            + [f"SELECT name FROM e WHERE id = {i}" for i in range(3)]  # DW
        )
        log = make_log(statements)
        result = CleaningPipeline(
            PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        ).run(log)
        assert result.dedup.removed == 1
        assert len(result.antipatterns) == 1
        assert len(result.clean_log) == 2

    def test_overview_counts(self):
        statements = (
            [f"SELECT name FROM e WHERE id = {i}" for i in range(4)]
            + ["INSERT INTO t VALUES (1)"]
        )
        log = make_log(statements)
        result = CleaningPipeline(
            PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        ).run(log)
        overview = result.overview()
        assert overview.original_size == 5
        assert overview.select_count == 4
        assert overview.final_size == 1
        assert overview.antipatterns["DW-Stifle"].queries == 4
        text = overview.format()
        assert "Size of original query log" in text
        assert "DW-Stifle" in text

    def test_registry_marked(self):
        log = make_log([f"SELECT name FROM e WHERE id = {i}" for i in range(4)])
        result = CleaningPipeline(
            PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        ).run(log)
        marked = [s for s in result.registry if s.is_antipattern]
        assert len(marked) == 1
        assert marked[0].antipattern_types == {"DW-Stifle"}

    def test_removal_log_property(self):
        log = make_log(
            ["SELECT keep FROM t WHERE x > 0"]
            + [f"SELECT name FROM e WHERE id = {i}" for i in range(3)]
        )
        result = CleaningPipeline(
            PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        ).run(log)
        assert result.removal_log.statements() == ["SELECT keep FROM t WHERE x > 0"]

    def test_sws_report_only_when_configured(self):
        log = make_log(["SELECT a FROM t WHERE x > 0"])
        without = CleaningPipeline(PipelineConfig()).run(log)
        assert without.sws_report is None
        with_sws = CleaningPipeline(PipelineConfig(sws=SwsConfig())).run(log)
        assert with_sws.sws_report is not None

    def test_clean_convenience(self):
        log = make_log([f"SELECT name FROM e WHERE id = {i}" for i in range(3)])
        result = clean(
            log, PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        )
        assert len(result.clean_log) == 1

    def test_empty_log_runs(self):
        result = CleaningPipeline().run(QueryLog())
        assert len(result.clean_log) == 0
        assert result.overview().original_size == 0

    def test_unparseable_only_log(self):
        log = make_log(["garbage ..", "DROP TABLE x"])
        result = CleaningPipeline().run(log)
        assert len(result.clean_log) == 0
        assert result.overview().syntax_errors == 1
        assert result.overview().non_select == 1

    def test_second_pass_residual_is_zero_on_simple_runs(self):
        """Section 5.5: after one cleaning pass, re-cleaning finds
        (almost) nothing; on this simple log, exactly nothing."""
        log = make_log([f"SELECT name FROM e WHERE id = {i}" for i in range(4)])
        config = PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        first = CleaningPipeline(config).run(log)
        second = CleaningPipeline(config).run(first.clean_log)
        assert [a for a in second.antipatterns if a.solvable] == []


class TestCensus:
    def test_census_by_label_distincts(self):
        log = make_log(
            [f"SELECT name FROM e WHERE id = {i}" for i in range(3)]
            + ["SELECT other FROM t WHERE x > 0"] * 1
            + [f"SELECT name FROM e WHERE id = {i}" for i in range(10, 13)]
        )
        result = CleaningPipeline(
            PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        ).run(log)
        census = census_by_label(result.antipatterns)
        assert census["DW-Stifle"].instances == 2
        assert census["DW-Stifle"].distinct == 1  # same pattern unit twice
        assert census["DW-Stifle"].queries == 6
