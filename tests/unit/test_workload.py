"""Unit tests for the synthetic workload: schema, profiles, generator."""

import random

import pytest

from repro.pipeline import parse_log
from repro.workload import (
    WorkloadConfig,
    build_database,
    default_profiles,
    generate,
    skyserver_catalog,
)
from repro.workload.groundtruth import GroundTruth, score_detection
from repro.workload.profiles import SkyContext


class TestSchema:
    def test_catalog_contains_core_tables(self):
        catalog = skyserver_catalog()
        for name in ("photoprimary", "photoobjall", "specobjall", "dbobjects"):
            assert name in catalog

    def test_key_columns_include_objid(self):
        keys = skyserver_catalog().key_column_names()
        assert {"objid", "htmid", "specobjid", "bestobjid", "name"} <= keys

    def test_build_database_is_deterministic(self):
        db1 = build_database(object_count=50, seed=7)
        db2 = build_database(object_count=50, seed=7)
        assert db1.table("photoprimary").rows() == db2.table("photoprimary").rows()

    def test_photoprimary_is_subset_of_photoobjall(self):
        db = build_database(object_count=100, seed=3)
        all_ids = {row["objid"] for row in db.table("photoobjall").rows()}
        primary_ids = {row["objid"] for row in db.table("photoprimary").rows()}
        assert primary_ids <= all_ids

    def test_spec_links_back_to_photo(self):
        db = build_database(object_count=100, seed=3)
        all_ids = {row["objid"] for row in db.table("photoobjall").rows()}
        for row in db.table("specobjall").rows():
            assert row["bestobjid"] in all_ids

    def test_positions_in_range(self):
        db = build_database(object_count=200, seed=5)
        for row in db.table("photoobjall").rows():
            assert 0.0 <= row["ra"] < 360.0
            assert -90.0 <= row["dec"] <= 90.0

    def test_spatial_functions_registered(self):
        db = build_database(object_count=30, seed=1)
        result = db.execute("SELECT count(*) FROM fGetObjFromRect(0, -90, 360, 90)")
        assert result.rows[0][0] == len(db.table("photoprimary"))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            build_database(object_count=-1)


class TestProfiles:
    def test_every_profile_emits_parseable_or_intended_noise(self):
        rng = random.Random(1)
        ctx = SkyContext.synthetic()
        counter = [0]

        def next_group():
            counter[0] += 1
            return counter[0]

        from repro.sqlparser import SqlError, parse

        for profile in default_profiles():
            events = profile.burst(rng, ctx, next_group)
            assert events, profile.name
            for event in events:
                if event.truth in ("non-select", "syntax-error"):
                    with pytest.raises(SqlError):
                        parse(event.sql)
                else:
                    parse(event.sql)  # must not raise

    def test_gaps_are_nonnegative(self):
        rng = random.Random(2)
        ctx = SkyContext.synthetic()
        for profile in default_profiles():
            for event in profile.burst(rng, ctx, lambda: 1):
                assert event.gap >= 0.0

    def test_cth_profiles_tag_reality(self):
        rng = random.Random(3)
        ctx = SkyContext.synthetic()
        from repro.workload.profiles import CthFalseApp, CthRealApp

        real_events = CthRealApp().burst(rng, ctx, lambda: 1)
        assert all(e.cth_real is True for e in real_events)
        false_events = CthFalseApp().burst(rng, ctx, lambda: 2)
        assert all(e.cth_real is False for e in false_events)

    def test_sws_crawler_slides_disjoint_windows(self):
        rng = random.Random(4)
        ctx = SkyContext.synthetic()
        from repro.workload.profiles import SwsCrawler

        events = SwsCrawler().burst(rng, ctx, lambda: 1)
        constants = [e.sql.split(">= ")[1].split(" AND")[0] for e in events]
        assert len(set(constants)) == len(constants)


class TestGenerator:
    def test_deterministic_under_seed(self):
        a = generate(WorkloadConfig(seed=11, scale=0.05))
        b = generate(WorkloadConfig(seed=11, scale=0.05))
        assert a.log == b.log

    def test_different_seeds_differ(self):
        a = generate(WorkloadConfig(seed=11, scale=0.05))
        b = generate(WorkloadConfig(seed=12, scale=0.05))
        assert a.log != b.log

    def test_seqs_are_consecutive_and_time_ordered(self):
        result = generate(WorkloadConfig(seed=1, scale=0.05))
        seqs = [record.seq for record in result.log]
        assert seqs == list(range(len(result.log)))
        times = [record.timestamp for record in result.log]
        assert times == sorted(times)

    def test_scale_grows_log(self):
        small = generate(WorkloadConfig(seed=1, scale=0.05))
        large = generate(WorkloadConfig(seed=1, scale=0.2))
        assert len(large.log) > len(small.log)

    def test_metadata_present(self):
        result = generate(WorkloadConfig(seed=1, scale=0.05))
        record = result.log[0]
        assert record.user and record.ip and record.session

    def test_truth_references_valid_seqs(self, small_workload):
        seqs = {record.seq for record in small_workload.log}
        assert set(small_workload.truth.label_by_seq) <= seqs

    def test_truth_counts_cover_major_labels(self, small_workload):
        counts = small_workload.truth.count_by_label()
        for label in ("DW-Stifle", "DS-Stifle", "CTH-candidate", "duplicate"):
            assert counts.get(label, 0) > 0, label

    def test_generated_log_mostly_parses(self, small_workload):
        stage = parse_log(small_workload.log)
        planted_bad = len(
            small_workload.truth.seqs_with_label("syntax-error")
        ) + len(small_workload.truth.seqs_with_label("non-select"))
        assert len(stage.syntax_errors) + len(stage.non_select) == planted_bad

    def test_executable_against_database(self, sky_database, executable_workload):
        """Constants drawn from the database make every SELECT runnable."""
        stage = parse_log(executable_workload.log)
        for query in stage.queries[:200]:
            sky_database.execute(query.statement)


class TestGroundTruthHelpers:
    def test_score_detection_perfect(self):
        assert score_detection({1, 2}, {1, 2}) == (1.0, 1.0)

    def test_score_detection_partial(self):
        precision, recall = score_detection({1, 2, 3, 4}, {1, 2})
        assert precision == 0.5 and recall == 1.0

    def test_score_detection_empty_detected(self):
        assert score_detection(set(), {1}) == (0.0, 0.0)
        assert score_detection(set(), set()) == (1.0, 1.0)

    def test_cth_reality_map(self, small_workload):
        reality = small_workload.truth.cth_reality()
        assert set(reality.values()) == {True, False}
