"""Unit tests for the parallel sharded cleaning executor."""

import pickle

import pytest

from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.pipeline import (
    CleaningPipeline,
    ExecutionConfig,
    ParallelCleaner,
    PipelineConfig,
    StreamingCleaner,
    clean_log_parallel,
    parse_log,
    shard_index,
    shard_records,
)

KEYS = frozenset({"empid", "id", "objid"})


def make_log(entries):
    return QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts, user) in enumerate(entries)
    )


def parallel_config(workers, chunk_size=64, **kwargs):
    return PipelineConfig(
        detection=DetectionContext(key_columns=KEYS),
        execution=ExecutionConfig(
            mode="parallel", workers=workers, chunk_size=chunk_size
        ),
        **kwargs,
    )


def many_user_log(users=10, per_user=6):
    entries = []
    clock = 0.0
    for i in range(users * per_user):
        user = f"u{i % users}"
        entries.append((f"SELECT name FROM e WHERE id = {i}", clock, user))
        clock += 0.05
    return make_log(entries)


class TestSharding:
    def test_shard_index_is_stable(self):
        # CRC-32 of a fixed key is a constant — the whole point: shard
        # assignment must not depend on process-level hash randomisation.
        assert shard_index("alice", 1024) == shard_index("alice", 1024)
        assert 0 <= shard_index("alice", 7) < 7

    def test_users_never_split_across_shards(self):
        log = many_user_log(users=17, per_user=5)
        shards = shard_records(log, workers=4, chunk_size=10)
        seen = {}
        for index, shard in enumerate(shards):
            for record in shard:
                assert seen.setdefault(record.user_key(), index) == index

    def test_all_records_preserved(self):
        log = many_user_log(users=9, per_user=4)
        shards = shard_records(log, workers=3, chunk_size=7)
        merged = sorted(
            (r for shard in shards for r in shard), key=lambda r: r.seq
        )
        assert merged == log.records()

    def test_chunk_size_bounds_shards_of_many_small_users(self):
        log = many_user_log(users=40, per_user=2)
        shards = shard_records(log, workers=2, chunk_size=10)
        assert len(shards) > 1
        # a shard may exceed the chunk only via a single oversized user
        # bucket; with 40 tiny users every shard obeys the bound
        # (bucket granularity is 32+, so a bucket holds ~2-3 users here)
        assert all(len(shard) <= 10 for shard in shards)

    def test_empty_log(self):
        assert shard_records(QueryLog(), workers=4, chunk_size=10) == []


class TestParallelCleaner:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_batch_on_stifle_log(self, workers):
        log = many_user_log()
        batch = CleaningPipeline(parallel_config(workers)).run(log)
        cleaner = ParallelCleaner(parallel_config(workers))
        cleaned = cleaner.run(log)
        assert cleaned.records() == batch.clean_log.records()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_equivalence_suite_batch_streaming_parallel(
        self, workers, small_workload, sky_keys
    ):
        """Batch == streaming == parallel, record for record, on a
        generator log seeded with Stifle/CTH/SNC instances."""
        config = PipelineConfig(detection=DetectionContext(key_columns=sky_keys))
        batch = CleaningPipeline(config).run(small_workload.log)

        streaming = StreamingCleaner(config)
        streamed = streaming.run(small_workload.log)

        parallel = ParallelCleaner(
            PipelineConfig(
                detection=DetectionContext(key_columns=sky_keys),
                execution=ExecutionConfig(
                    mode="parallel", workers=workers, chunk_size=256
                ),
            )
        )
        paralleled = parallel.run(small_workload.log)

        assert streamed.records() == batch.clean_log.records()
        assert paralleled.records() == batch.clean_log.records()

    def test_merge_restores_global_time_order(self, small_workload, sky_keys):
        cleaner = ParallelCleaner(
            PipelineConfig(
                detection=DetectionContext(key_columns=sky_keys),
                execution=ExecutionConfig(
                    mode="parallel", workers=4, chunk_size=128
                ),
            )
        )
        cleaned = cleaner.run(small_workload.log)
        assert cleaner.stats.shard_count > 1
        keys = [(record.timestamp, record.seq) for record in cleaned]
        assert keys == sorted(keys)

    def test_empty_log(self):
        cleaner = ParallelCleaner(parallel_config(4))
        cleaned = cleaner.run(QueryLog())
        assert len(cleaned) == 0
        assert cleaner.stats.records_in == 0
        assert cleaner.stats.shard_count == 0

    def test_stats_merge_and_timings(self):
        log = many_user_log(users=12, per_user=8)
        cleaner = ParallelCleaner(parallel_config(2, chunk_size=24))
        cleaned = cleaner.run(log)
        stats = cleaner.stats
        assert stats.records_in == len(log)
        assert stats.records_out == len(cleaned)
        assert stats.shard_count == len(stats.shards)
        assert sum(s.records_in for s in stats.shards) == len(log)
        assert sum(s.records_out for s in stats.shards) == len(cleaned)
        assert stats.stats.instances_solved > 0
        assert stats.wall_seconds > 0.0
        assert stats.throughput > 0.0
        timings = stats.timings.as_dict()
        assert set(timings) == {"dedup", "parse", "mine", "detect", "solve", "merge"}
        assert timings["parse"] > 0.0
        assert stats.timings.total >= timings["parse"]

    def test_workers_resolve_from_cpu_count(self):
        cleaner = ParallelCleaner(parallel_config(0))
        assert cleaner.stats.workers >= 1

    def test_clean_log_parallel_convenience(self):
        log = many_user_log(users=6, per_user=4)
        base = PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        cleaned, stats = clean_log_parallel(log, base, workers=2)
        assert stats.workers == 2
        batch = CleaningPipeline(base).run(log)
        assert cleaned.records() == batch.clean_log.records()
        # the caller's config was not mutated
        assert base.execution.workers == 0


class TestPicklability:
    """Everything that crosses the process boundary must pickle."""

    def test_log_record_roundtrip(self):
        record = LogRecord(
            seq=3, sql="SELECT a FROM t", timestamp=1.5,
            user="u", ip="1.2.3.4", session="s", rows=7,
        )
        assert pickle.loads(pickle.dumps(record)) == record

    def test_parsed_query_roundtrip(self):
        log = make_log([("SELECT name FROM e WHERE id = 5", 0.0, "u")])
        query = parse_log(log).queries[0]
        clone = pickle.loads(pickle.dumps(query))
        assert clone.record == query.record
        assert clone.template_id == query.template_id
        assert clone.statement == query.statement

    def test_pipeline_config_roundtrip(self):
        from repro.patterns import SwsConfig

        config = PipelineConfig(
            detection=DetectionContext(key_columns=KEYS),
            sws=SwsConfig(),
            execution=ExecutionConfig(mode="parallel", workers=3),
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone.detection == config.detection
        assert clone.execution == config.execution

    def test_config_with_default_detectors_roundtrip(self):
        from repro.antipatterns.base import default_detectors

        config = PipelineConfig(detectors=default_detectors())
        clone = pickle.loads(pickle.dumps(config))
        assert [d.label for d in clone.detectors] == [
            d.label for d in config.detectors
        ]
