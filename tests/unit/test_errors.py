"""Unit tests for the fault-tolerance primitives (``repro.errors``)."""

import math
import pickle

import pytest

from repro.errors import (
    ERROR_POLICIES,
    INVALID_STATEMENT,
    INVALID_TIMESTAMP,
    PARSE_ERROR,
    UNREADABLE_RECORD,
    QuarantineChannel,
    QuarantinedRecord,
    RecordFailure,
    ShardFailure,
    record_fault,
    validate_error_policy,
)
from repro import open_log
from repro.log import LogRecord


def make_record(**overrides):
    defaults = dict(seq=7, sql="SELECT a FROM t", timestamp=1.0, user="u1")
    defaults.update(overrides)
    return LogRecord(**defaults)


class TestPolicyValidation:
    def test_all_policies_accepted(self):
        for policy in ERROR_POLICIES:
            assert validate_error_policy(policy) == policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="error_policy"):
            validate_error_policy("forgiving")


class TestRecordFault:
    def test_sound_record(self):
        assert record_fault(make_record()) is None

    @pytest.mark.parametrize(
        "timestamp", [float("nan"), math.inf, -math.inf, "1.0", None]
    )
    def test_bad_timestamps(self, timestamp):
        assert record_fault(make_record(timestamp=timestamp)) == INVALID_TIMESTAMP

    @pytest.mark.parametrize("sql", [None, 42, b"SELECT 1"])
    def test_non_string_sql(self, sql):
        assert record_fault(make_record(sql=sql)) == INVALID_STATEMENT

    def test_timestamp_checked_before_sql(self):
        fault = record_fault(make_record(timestamp=float("nan"), sql=None))
        assert fault == INVALID_TIMESTAMP


class TestFailureExceptions:
    def test_record_failure_message_and_pickle(self):
        failure = RecordFailure(
            make_record(), INVALID_TIMESTAMP, "validate", "NaN"
        )
        assert "invalid_timestamp in validate stage" in str(failure)
        assert "seq=7" in str(failure)
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.reason == INVALID_TIMESTAMP
        assert clone.record.seq == 7

    def test_shard_failure_message_and_pickle(self):
        failure = ShardFailure(3, 2, "worker died")
        assert "shard 3 failed after 2 attempt(s)" in str(failure)
        clone = pickle.loads(pickle.dumps(failure))
        assert (clone.shard, clone.attempts) == (3, 2)


class TestQuarantineChannel:
    def test_add_and_views(self):
        channel = QuarantineChannel()
        assert not channel
        channel.add(make_record(seq=2), PARSE_ERROR, "parse", "boom")
        channel.add(make_record(seq=1), INVALID_TIMESTAMP, "validate")
        assert len(channel) == 2
        assert channel.seqs() == [1, 2]
        assert channel.by_reason() == {PARSE_ERROR: 1, INVALID_TIMESTAMP: 1}
        assert [entry.stage for entry in channel] == ["parse", "validate"]

    def test_add_raw_truncates_long_lines(self):
        channel = QuarantineChannel()
        channel.add_raw("x" * 500, UNREADABLE_RECORD, "io")
        (entry,) = channel.entries
        assert entry.record is None
        assert len(entry.detail) == 201
        assert entry.detail.endswith("…")
        assert channel.records() == []
        assert channel.seqs() == []

    def test_merge_preserves_order(self):
        left, right = QuarantineChannel(), QuarantineChannel()
        left.add(make_record(seq=1), PARSE_ERROR, "parse")
        right.add(make_record(seq=2), PARSE_ERROR, "parse")
        left.merge(right)
        assert [e.record.seq for e in left] == [1, 2]

    def test_as_dict_shape(self):
        channel = QuarantineChannel()
        channel.add(
            make_record(sql=12345), INVALID_STATEMENT, "validate", "not a str"
        )
        data = channel.as_dict()
        assert data["count"] == 1
        assert data["by_reason"] == {INVALID_STATEMENT: 1}
        (entry,) = data["entries"]
        assert entry["record"]["sql"] == "12345"  # repr'd, JSON-safe
        assert entry["detail"] == "not a str"

    def test_pickles_across_workers(self):
        channel = QuarantineChannel()
        channel.add(make_record(), PARSE_ERROR, "parse", "boom")
        clone = pickle.loads(pickle.dumps(channel))
        assert clone.as_dict() == channel.as_dict()


class TestIoErrorPolicies:
    def write_bad_csv(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "seq,timestamp,user,ip,session,rows,sql\n"
            "0,1.0,u1,,,,SELECT a FROM t\n"
            "1,notatime,u1,,,,SELECT b FROM t\n"
            "2,3.0,u1,,,,SELECT c FROM t\n",
            encoding="utf-8",
        )
        return path

    def test_csv_strict_raises(self, tmp_path):
        with pytest.raises(ValueError, match="malformed row"):
            open_log(self.write_bad_csv(tmp_path)).read()

    def test_csv_lenient_skips(self, tmp_path):
        log = open_log(self.write_bad_csv(tmp_path), errors="lenient").read()
        assert [record.seq for record in log] == [0, 2]

    def test_csv_quarantine_captures(self, tmp_path):
        channel = QuarantineChannel()
        log = open_log(
            self.write_bad_csv(tmp_path), errors="quarantine", channel=channel
        ).read()
        assert len(log) == 2
        assert channel.by_reason() == {UNREADABLE_RECORD: 1}
        (entry,) = channel.entries
        assert entry.stage == "io"
        assert "notatime" in entry.detail

    def test_jsonl_quarantine_captures(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"seq": 0, "timestamp": 1.0, "sql": "SELECT a FROM t"}\n'
            "{not json}\n",
            encoding="utf-8",
        )
        channel = QuarantineChannel()
        log = open_log(path, errors="quarantine", channel=channel).read()
        assert len(log) == 1
        assert channel.by_reason() == {UNREADABLE_RECORD: 1}

    def test_readers_reject_unknown_policy(self, tmp_path):
        path = self.write_bad_csv(tmp_path)
        with pytest.raises(ValueError, match="error_policy"):
            open_log(path, errors="ignore")
