"""Unit tests for table hash indexes and the indexed access path."""

import pytest

from repro.engine import Column, Database, TableSchema
from repro.engine.table import Table, index_key


@pytest.fixture()
def table():
    schema = TableSchema(
        "t", (Column("id", "int", is_key=True), Column("name"), Column("v"))
    )
    return Table(
        schema,
        [
            {"id": 1, "name": "Alpha", "v": 10},
            {"id": 2, "name": "beta", "v": 20},
            {"id": 2, "name": "Beta2", "v": 21},
            {"id": None, "name": None, "v": 30},
        ],
    )


class TestIndexKey:
    def test_string_case_folded(self):
        assert index_key("ABC") == index_key("abc")

    def test_integral_float_unified(self):
        assert index_key(5.0) == index_key(5)

    def test_bool_not_confused_with_int(self):
        assert index_key(True) is True


class TestLookup:
    def test_point_lookup(self, table):
        rows = table.lookup("id", 1)
        assert len(rows) == 1
        assert rows[0]["name"] == "Alpha"

    def test_duplicate_values_all_returned(self, table):
        assert len(table.lookup("id", 2)) == 2

    def test_case_insensitive_string_lookup(self, table):
        assert len(table.lookup("name", "ALPHA")) == 1

    def test_float_int_equivalence(self, table):
        assert len(table.lookup("id", 1.0)) == 1

    def test_null_lookup_empty(self, table):
        assert table.lookup("id", None) == []

    def test_null_stored_values_not_indexed(self, table):
        # the NULL-id row must not be reachable via any lookup value
        for value in (0, 1, 2, 30):
            assert all(r["v"] != 30 for r in table.lookup("id", value))

    def test_missing_value(self, table):
        assert table.lookup("id", 999) == []

    def test_unknown_column_raises(self, table):
        with pytest.raises(KeyError):
            table.lookup("nope", 1)

    def test_index_invalidated_by_insert(self, table):
        assert table.lookup("id", 77) == []
        table.insert({"id": 77, "name": "new", "v": 0})
        assert len(table.lookup("id", 77)) == 1


class TestIndexedAccessPath:
    @pytest.fixture()
    def db(self):
        database = Database()
        database.create_table(
            TableSchema("t", (Column("id", "int", is_key=True), Column("v"))),
            [{"id": i, "v": i * 10} for i in range(100)],
        )
        return database

    def test_equality_lookup_scans_one_row(self, db):
        result = db.execute("SELECT v FROM t WHERE id = 7")
        assert result.rows == [(70,)]
        assert result.stats.rows_scanned == 1

    def test_in_list_scans_only_matches(self, db):
        result = db.execute("SELECT v FROM t WHERE id IN (3, 5, 5, 900)")
        assert sorted(result.rows) == [(30,), (50,)]
        assert result.stats.rows_scanned == 2

    def test_extra_conjuncts_still_applied(self, db):
        result = db.execute("SELECT v FROM t WHERE id = 7 AND v > 1000")
        assert result.rows == []
        assert result.stats.rows_scanned == 1

    def test_alias_qualified_column(self, db):
        result = db.execute("SELECT x.v FROM t x WHERE x.id = 7")
        assert result.rows == [(70,)]
        assert result.stats.rows_scanned == 1

    def test_range_predicates_still_scan(self, db):
        result = db.execute("SELECT v FROM t WHERE id > 95")
        assert len(result.rows) == 4
        assert result.stats.rows_scanned == 100

    def test_or_disables_index(self, db):
        result = db.execute("SELECT v FROM t WHERE id = 1 OR id = 2")
        assert len(result.rows) == 2
        assert result.stats.rows_scanned == 100

    def test_same_results_as_scan_path(self, db):
        indexed = db.execute("SELECT v FROM t WHERE id = 42").rows
        scanned = db.execute("SELECT v FROM t WHERE id + 0 = 42").rows
        assert indexed == scanned

    def test_unknown_table_still_errors(self, db):
        from repro.engine import EngineError

        with pytest.raises(EngineError):
            db.execute("SELECT v FROM missing WHERE id = 1")
