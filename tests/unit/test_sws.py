"""Unit tests for sliding-window-search detection (Section 6.5)."""

from repro.log import LogRecord, QueryLog
from repro.patterns import (
    PatternRegistry,
    SwsConfig,
    coverage_grid,
    detect_sws,
    mine,
)
from repro.pipeline import parse_log


def mined(entries):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts, user) in enumerate(entries)
    )
    result = mine(parse_log(log).queries)
    return PatternRegistry.from_instances(result.instances), result.instances


def sliding_entries(count, user="bot"):
    return [
        (
            f"SELECT a FROM t WHERE h >= {i * 10} AND h < {(i + 1) * 10}",
            float(i),
            user,
        )
        for i in range(count)
    ]


class TestDetectSws:
    def test_sliding_window_bot_is_detected(self):
        registry, instances = mined(sliding_entries(50))
        report = detect_sws(registry, instances, SwsConfig(max_popularity=1))
        assert len(report.patterns) == 1
        assert report.coverage > 0.9

    def test_popular_pattern_is_not_sws(self):
        entries = []
        for user in range(10):
            entries.extend(sliding_entries(5, user=f"u{user}"))
        registry, instances = mined(entries)
        report = detect_sws(
            registry, instances, SwsConfig(max_popularity=2, min_frequency_share=0.0)
        )
        assert report.patterns == []

    def test_infrequent_pattern_is_not_sws(self):
        entries = sliding_entries(2) + [
            (f"SELECT b FROM u WHERE x = {i}", 1000.0 + i, f"h{i}")
            for i in range(50)
        ]
        registry, instances = mined(entries)
        report = detect_sws(
            registry, instances, SwsConfig(min_frequency_share=0.5)
        )
        assert report.patterns == []

    def test_repeating_constants_fail_shape_check(self):
        # Same window requested over and over: not a sliding download.
        entries = [
            ("SELECT a FROM t WHERE h >= 0 AND h < 10", float(i) * 100, "bot")
            for i in range(30)
        ]
        registry, instances = mined(entries)
        with_check = detect_sws(
            registry,
            instances,
            SwsConfig(max_popularity=1, check_disjoint_windows=True),
            mark=False,
        )
        without_check = detect_sws(
            registry,
            instances,
            SwsConfig(max_popularity=1, check_disjoint_windows=False),
            mark=False,
        )
        assert with_check.patterns == []
        assert len(without_check.patterns) == 1

    def test_mark_labels_registry(self):
        registry, instances = mined(sliding_entries(30))
        detect_sws(registry, instances, SwsConfig(max_popularity=1), mark=True)
        assert registry.ranked()[0].antipattern_types == {"SWS"}

    def test_skip_antipatterns(self):
        registry, instances = mined(sliding_entries(30))
        registry.ranked()[0].antipattern_types.add("DW-Stifle")
        report = detect_sws(registry, instances, SwsConfig(max_popularity=1))
        assert report.patterns == []


class TestCoverageGrid:
    def test_grid_shape_and_monotonicity(self):
        registry, instances = mined(
            sliding_entries(40) + sliding_entries(40, user="bot2")
        )
        grid = coverage_grid(
            registry,
            instances,
            frequency_shares=(0.5, 0.01),
            popularities=(1, 2),
        )
        assert len(grid) == 2 and len(grid[0]) == 2
        # Lower frequency threshold can only widen coverage...
        for row in grid:
            assert row[1] >= row[0]
        # ...and a higher popularity cap can only widen it too.
        assert grid[1][1] >= grid[0][1]
