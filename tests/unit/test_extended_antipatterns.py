"""Unit tests for the extended antipattern catalog and its rewrites."""

import pytest

from repro.antipatterns import DetectionContext
from repro.antipatterns.extended import (
    AMBIGUOUS_GROUP_BY,
    CARTESIAN_PRODUCT,
    EXTENDED_LABELS,
    HAVING_NO_AGGREGATE,
    IMPLICIT_COLUMNS,
    POOR_MANS_SEARCH,
    RANDOM_SELECTION,
    REDUNDANT_DISTINCT,
    extended_detectors,
)
from repro.engine import Catalog, Column, TableSchema
from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log
from repro.rewrite.extended_rewrites import install_extended_rules
from repro.rewrite.solver import solve
from repro.sqlparser import format_sql


def detect_all(statements):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=float(i), user="u")
        for i, sql in enumerate(statements)
    )
    blocks = build_blocks(parse_log(log).queries)
    context = DetectionContext()
    instances = []
    for detector in extended_detectors():
        instances.extend(detector.detect(blocks, context))
    return instances


def labels_of(statements):
    return {instance.label for instance in detect_all(statements)}


class TestImplicitColumns:
    def test_star_over_base_table_flagged(self):
        assert IMPLICIT_COLUMNS in labels_of(["SELECT * FROM t"])

    def test_qualified_star_flagged(self):
        assert IMPLICIT_COLUMNS in labels_of(["SELECT p.* FROM t p"])

    def test_star_over_join_flagged(self):
        assert IMPLICIT_COLUMNS in labels_of(
            ["SELECT * FROM t JOIN u ON t.i = u.i"]
        )

    def test_explicit_columns_fine(self):
        assert IMPLICIT_COLUMNS not in labels_of(["SELECT a, b FROM t"])

    def test_count_star_fine(self):
        assert IMPLICIT_COLUMNS not in labels_of(["SELECT count(*) FROM t"])

    def test_star_over_function_table_not_flagged(self):
        assert IMPLICIT_COLUMNS not in labels_of(
            ["SELECT * FROM fGetNearestObjEq(1, 2, 3)"]
        )


class TestPoorMansSearch:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE name LIKE '%xyz%'",
            "SELECT a FROM t WHERE name LIKE '%xyz'",
            "SELECT a FROM t WHERE name LIKE '_xyz'",
        ],
    )
    def test_leading_wildcard_flagged(self, sql):
        assert POOR_MANS_SEARCH in labels_of([sql])

    def test_trailing_wildcard_fine(self):
        assert POOR_MANS_SEARCH not in labels_of(
            ["SELECT a FROM t WHERE name LIKE 'xyz%'"]
        )

    def test_non_literal_pattern_ignored(self):
        assert POOR_MANS_SEARCH not in labels_of(
            ["SELECT a FROM t WHERE name LIKE other_col"]
        )


class TestRandomSelection:
    def test_order_by_rand_flagged(self):
        assert RANDOM_SELECTION in labels_of(
            ["SELECT TOP 1 a FROM t ORDER BY rand()"]
        )

    def test_order_by_newid_flagged(self):
        assert RANDOM_SELECTION in labels_of(["SELECT a FROM t ORDER BY newid()"])

    def test_plain_order_by_fine(self):
        assert RANDOM_SELECTION not in labels_of(["SELECT a FROM t ORDER BY a"])


class TestAmbiguousGroupBy:
    def test_ungrouped_column_flagged(self):
        assert AMBIGUOUS_GROUP_BY in labels_of(
            ["SELECT a, b, count(*) FROM t GROUP BY a"]
        )

    def test_all_grouped_fine(self):
        assert AMBIGUOUS_GROUP_BY not in labels_of(
            ["SELECT a, count(*) FROM t GROUP BY a"]
        )

    def test_qualified_matching_by_name(self):
        assert AMBIGUOUS_GROUP_BY not in labels_of(
            ["SELECT t.a, count(*) FROM t GROUP BY a"]
        )

    def test_star_in_grouped_query_flagged(self):
        assert AMBIGUOUS_GROUP_BY in labels_of(
            ["SELECT *, count(*) FROM t GROUP BY a"]
        )

    def test_no_group_by_fine(self):
        assert AMBIGUOUS_GROUP_BY not in labels_of(["SELECT a, b FROM t"])


class TestCartesianProduct:
    def test_comma_join_without_predicate_flagged(self):
        assert CARTESIAN_PRODUCT in labels_of(["SELECT a FROM t, u"])

    def test_comma_join_with_filter_only_flagged(self):
        assert CARTESIAN_PRODUCT in labels_of(
            ["SELECT a FROM t, u WHERE t.x = 5"]
        )

    def test_connecting_predicate_fine(self):
        assert CARTESIAN_PRODUCT not in labels_of(
            ["SELECT a FROM t, u WHERE t.id = u.id"]
        )

    def test_single_table_fine(self):
        assert CARTESIAN_PRODUCT not in labels_of(["SELECT a FROM t"])

    def test_explicit_join_fine(self):
        assert CARTESIAN_PRODUCT not in labels_of(
            ["SELECT a FROM t JOIN u ON t.id = u.id"]
        )


class TestRedundantDistinct:
    def test_distinct_with_matching_group_by_flagged(self):
        assert REDUNDANT_DISTINCT in labels_of(
            ["SELECT DISTINCT a, count(*) FROM t GROUP BY a"]
        )

    def test_distinct_without_group_by_fine(self):
        assert REDUNDANT_DISTINCT not in labels_of(["SELECT DISTINCT a FROM t"])

    def test_distinct_on_extra_column_not_flagged(self):
        # b is not grouped: the query is broken differently (ambiguous),
        # but not a *redundant* distinct
        assert REDUNDANT_DISTINCT not in labels_of(
            ["SELECT DISTINCT a, b FROM t GROUP BY a"]
        )


class TestHavingNoAggregate:
    def test_aggregate_free_having_flagged(self):
        assert HAVING_NO_AGGREGATE in labels_of(
            ["SELECT a, count(*) FROM t GROUP BY a HAVING a > 3"]
        )

    def test_aggregate_having_fine(self):
        assert HAVING_NO_AGGREGATE not in labels_of(
            ["SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 3"]
        )


class TestExtendedRewrites:
    def _solve(self, statements, catalog=None):
        log = QueryLog(
            LogRecord(seq=i, sql=sql, timestamp=float(i), user="u")
            for i, sql in enumerate(statements)
        )
        stage = parse_log(log)
        blocks = build_blocks(stage.queries)
        context = DetectionContext()
        instances = []
        for detector in extended_detectors():
            instances.extend(detector.detect(blocks, context))
        return solve(stage.parsed_log, instances, install_extended_rules(catalog))

    def test_redundant_distinct_dropped(self):
        result = self._solve(["SELECT DISTINCT a, count(*) FROM t GROUP BY a"])
        assert result.log.statements() == [
            "SELECT a, count(*) FROM t GROUP BY a"
        ]

    def test_having_moved_to_where(self):
        result = self._solve(
            ["SELECT a, count(*) FROM t WHERE b = 1 GROUP BY a HAVING a > 3"]
        )
        assert result.log.statements() == [
            "SELECT a, count(*) FROM t WHERE b = 1 AND a > 3 GROUP BY a"
        ]

    def test_having_without_where(self):
        result = self._solve(
            ["SELECT a FROM t GROUP BY a HAVING a > 3"]
        )
        assert result.log.statements() == ["SELECT a FROM t WHERE a > 3 GROUP BY a"]

    def test_star_expansion_with_catalog(self):
        catalog = Catalog(
            [TableSchema("t", (Column("x"), Column("y"), Column("z")))]
        )
        result = self._solve(["SELECT * FROM t WHERE x = 1"], catalog)
        assert result.log.statements() == [
            "SELECT t.x, t.y, t.z FROM t WHERE x = 1"
        ]

    def test_star_expansion_with_alias(self):
        catalog = Catalog([TableSchema("t", (Column("x"), Column("y")))])
        result = self._solve(["SELECT p.* FROM t p"], catalog)
        assert result.log.statements() == ["SELECT p.x, p.y FROM t AS p"]

    def test_star_without_catalog_stays(self):
        # no catalog → no rule registered → the instance is unsolvable
        result = self._solve(["SELECT * FROM t"])
        assert result.log.statements() == ["SELECT * FROM t"]
        assert len(result.unsolvable) == 1

    def test_unknown_table_not_applicable(self):
        catalog = Catalog([TableSchema("other", (Column("x"),))])
        result = self._solve(["SELECT * FROM t"], catalog)
        assert result.log.statements() == ["SELECT * FROM t"]
        assert len(result.not_applicable) == 1

    def test_rewrites_semantics_on_engine(self, employees_database):
        """HAVING→WHERE and DISTINCT-drop preserve results."""
        original = (
            "SELECT department, count(*) AS c FROM Employees "
            "GROUP BY department HAVING department = 'sales'"
        )
        result = self._solve([original])
        rewritten = result.log.statements()[0]
        left = employees_database.execute(original)
        right = employees_database.execute(rewritten)
        assert left.sorted_rows() == right.sorted_rows()


class TestCatalogOfLabels:
    def test_every_detector_has_unique_label(self):
        labels = [d.label for d in extended_detectors()]
        assert len(labels) == len(set(labels))
        assert set(labels) == set(EXTENDED_LABELS)
