"""Unit tests for the data-space analysis: regions, overlap, clustering."""

import math

import pytest

from repro.analysis import (
    Interval,
    cluster_queries,
    extract_region,
    interval_overlap,
    region_distance,
    region_overlap,
    set_overlap,
)
from repro.log import LogRecord, QueryLog
from repro.pipeline import parse_log


def region_of(sql):
    log = QueryLog([LogRecord(0, sql, 0.0, "u")])
    return extract_region(parse_log(log).queries[0])


def queries_for(statements):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=float(i), user="u")
        for i, sql in enumerate(statements)
    )
    return parse_log(log).queries


class TestInterval:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 1.0)

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 1).intersect(Interval(2, 3)) is None

    def test_unbounded(self):
        assert Interval().is_unbounded()
        assert not Interval(0, 1).is_unbounded()


class TestExtractRegion:
    def test_tables_collected(self):
        region = region_of("SELECT a FROM t JOIN u ON t.i = u.i")
        assert region.tables == {"t", "u"}

    def test_equality_gives_point_set(self):
        region = region_of("SELECT a FROM t WHERE objid = 5")
        assert region.points_map()["objid"] == frozenset({5.0})

    def test_between_gives_interval(self):
        region = region_of("SELECT a FROM t WHERE h BETWEEN 10 AND 20")
        assert region.numeric_map()["h"] == Interval(10.0, 20.0)

    def test_range_pair_intersects(self):
        region = region_of("SELECT a FROM t WHERE h >= 10 AND h <= 20")
        assert region.numeric_map()["h"] == Interval(10.0, 20.0)

    def test_flipped_comparison(self):
        region = region_of("SELECT a FROM t WHERE 10 <= h")
        assert region.numeric_map()["h"] == Interval(10.0, math.inf)

    def test_string_equality_is_categorical(self):
        region = region_of("SELECT a FROM t WHERE name = 'Galaxy'")
        assert region.categorical_map()["name"] == frozenset({"galaxy"})

    def test_numeric_in_list_is_a_point_set(self):
        region = region_of("SELECT a FROM t WHERE objid IN (3, 9, 5)")
        assert region.points_map()["objid"] == frozenset({3.0, 9.0, 5.0})

    def test_point_set_and_range_reconcile(self):
        region = region_of("SELECT a FROM t WHERE h IN (1, 5, 9) AND h < 6")
        assert region.points_map()["h"] == frozenset({1.0, 5.0})
        assert "h" not in region.numeric_map()

    def test_or_is_ignored_conservatively(self):
        region = region_of("SELECT a FROM t WHERE h = 1 OR h = 2")
        assert "h" not in region.numeric_map()
        assert "h" not in region.points_map()

    def test_function_args_become_pseudo_columns(self):
        region = region_of(
            "SELECT a FROM fGetNearbyObjEq(145.3, 0.2, 1.0) n, photoprimary p "
            "WHERE n.objid = p.objid"
        )
        assert "_fn_ra" in region.numeric_map()
        assert region.numeric_map()["_fn_ra"] == Interval(145.0, 146.0)


class TestOverlap:
    def test_identical_regions_overlap_fully(self):
        r = region_of("SELECT a FROM t WHERE objid = 5")
        assert region_overlap(r, r) == 1.0
        assert region_distance(r, r) == 0.0

    def test_disjoint_tables_no_overlap(self):
        a = region_of("SELECT a FROM t WHERE x = 1")
        b = region_of("SELECT a FROM u WHERE x = 1")
        assert region_overlap(a, b) == 0.0

    def test_disjoint_points_no_overlap(self):
        a = region_of("SELECT a FROM t WHERE objid = 5")
        b = region_of("SELECT a FROM t WHERE objid = 6")
        assert region_overlap(a, b) == 0.0

    def test_same_point_different_projection_overlaps(self):
        a = region_of("SELECT name FROM t WHERE objid = 5")
        b = region_of("SELECT phone FROM t WHERE objid = 5")
        assert region_overlap(a, b) == 1.0

    def test_point_inside_range_counts_as_covered(self):
        a = region_of("SELECT a FROM t WHERE h = 15")
        b = region_of("SELECT a FROM t WHERE h BETWEEN 10 AND 20")
        assert region_overlap(a, b) == 1.0

    def test_partially_overlapping_ranges(self):
        a = region_of("SELECT a FROM t WHERE h BETWEEN 0 AND 10")
        b = region_of("SELECT a FROM t WHERE h BETWEEN 5 AND 15")
        assert 0.0 < region_overlap(a, b) < 1.0

    def test_symmetry(self):
        a = region_of("SELECT a FROM t WHERE h BETWEEN 0 AND 10")
        b = region_of("SELECT a FROM t, u WHERE h BETWEEN 5 AND 15")
        assert region_overlap(a, b) == pytest.approx(region_overlap(b, a))

    def test_overlap_bounded(self):
        samples = [
            "SELECT a FROM t WHERE h = 1",
            "SELECT a FROM t WHERE h BETWEEN 0 AND 5",
            "SELECT a FROM t, u WHERE x = 'y'",
            "SELECT a FROM u",
        ]
        regions = [region_of(sql) for sql in samples]
        for first in regions:
            for second in regions:
                value = region_overlap(first, second)
                assert 0.0 <= value <= 1.0

    def test_interval_overlap_primitives(self):
        assert interval_overlap(Interval(0, 10), Interval(0, 10)) == 1.0
        assert interval_overlap(Interval(0, 1), Interval(2, 3)) == 0.0
        assert interval_overlap(Interval(5, 5), Interval(0, 10)) == 1.0
        assert interval_overlap(Interval(), Interval(0, 10)) == 1.0
        assert interval_overlap(Interval(0, 4), Interval(2, 6)) == 0.5

    def test_set_overlap_primitives(self):
        # Jaccard semantics: a subset only overlaps fractionally
        assert set_overlap(frozenset({"a"}), frozenset({"a", "b"})) == 0.5
        assert set_overlap(frozenset({"a"}), frozenset({"a"})) == 1.0
        assert set_overlap(frozenset({"a"}), frozenset({"b"})) == 0.0
        assert set_overlap(frozenset(), frozenset({"a"})) == 0.0


class TestClustering:
    def test_identical_queries_one_cluster(self):
        queries = queries_for(["SELECT a FROM t WHERE objid = 5"] * 4)
        result = cluster_queries(queries, threshold=0.5)
        assert result.cluster_count == 1
        assert result.clusters[0].size == 4

    def test_disjoint_points_stay_apart(self):
        queries = queries_for(
            [f"SELECT a FROM t WHERE objid = {i}" for i in range(5)]
        )
        result = cluster_queries(queries, threshold=0.5)
        assert result.cluster_count == 5

    def test_different_tables_stay_apart(self):
        queries = queries_for(
            ["SELECT a FROM t WHERE x = 1", "SELECT a FROM u WHERE x = 1"]
        )
        assert cluster_queries(queries, threshold=0.9).cluster_count == 2

    def test_higher_threshold_merges_more(self):
        queries = queries_for(
            [
                "SELECT a FROM t WHERE h BETWEEN 0 AND 10",
                "SELECT a FROM t WHERE h BETWEEN 8 AND 18",
            ]
        )
        low = cluster_queries(queries, threshold=0.05)
        high = cluster_queries(queries, threshold=0.95)
        assert low.cluster_count >= high.cluster_count

    def test_sizes_ranked_descending(self):
        queries = queries_for(
            ["SELECT a FROM t WHERE objid = 1"] * 3
            + ["SELECT a FROM t WHERE objid = 2"]
        )
        result = cluster_queries(queries, threshold=0.5)
        assert result.sizes_ranked() == [3, 1]

    def test_average_size(self):
        queries = queries_for(
            ["SELECT a FROM t WHERE objid = 1"] * 2
            + ["SELECT a FROM t WHERE objid = 2"] * 2
        )
        result = cluster_queries(queries, threshold=0.5)
        assert result.average_size == 2.0

    def test_empty_input(self):
        result = cluster_queries([], threshold=0.5)
        assert result.cluster_count == 0
        assert result.average_size == 0.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            cluster_queries([], threshold=0.0)
        with pytest.raises(ValueError):
            cluster_queries([], threshold=1.5)

    def test_runtime_recorded(self):
        queries = queries_for(["SELECT a FROM t WHERE objid = 1"])
        assert cluster_queries(queries, threshold=0.5).runtime_seconds >= 0.0

    def test_members_cover_all_queries(self):
        queries = queries_for(
            [f"SELECT a FROM t WHERE objid = {i % 3}" for i in range(9)]
        )
        result = cluster_queries(queries, threshold=0.5)
        members = sorted(
            index for cluster in result.clusters for index in cluster.members
        )
        assert members == list(range(9))
