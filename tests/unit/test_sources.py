"""Unit tests for the LogSource protocol and its adapters."""

import warnings

import pytest

import repro
from repro.errors import QuarantineChannel
from repro.log import LogRecord, QueryLog, write_csv, write_jsonl
from repro.store import (
    ColumnarSource,
    CsvSource,
    InMemorySource,
    JsonlSource,
    LogSource,
    as_source,
    open_log,
    sniff_format,
    write_columnar,
)


def make_log(count=10):
    return QueryLog(
        LogRecord(i, f"SELECT a FROM t WHERE id = {i}", float(i), f"u{i % 3}")
        for i in range(count)
    )


@pytest.fixture()
def on_disk(tmp_path):
    log = make_log()
    paths = {
        "csv": tmp_path / "log.csv",
        "jsonl": tmp_path / "log.jsonl",
        "columnar": tmp_path / "log.columnar",
    }
    write_csv(log, paths["csv"])
    write_jsonl(log, paths["jsonl"])
    write_columnar(log, paths["columnar"], chunk_records=4)
    return log, paths


class TestInMemorySource:
    def test_chunk_boundaries_are_stable(self):
        source = InMemorySource(make_log(), chunk_records=3)
        first = [list(c) for c in source.open_chunks()]
        second = [list(c) for c in source.open_chunks()]
        assert first == second
        assert [len(c) for c in first] == [3, 3, 3, 1]

    def test_start_chunk_skips(self):
        source = InMemorySource(make_log(), chunk_records=4)
        chunks = list(source.open_chunks(start_chunk=1))
        assert [r.seq for c in chunks for r in c] == [4, 5, 6, 7, 8, 9]

    def test_read_and_iter_and_hint(self):
        log = make_log()
        source = InMemorySource(log, chunk_records=4)
        assert source.read() == log
        assert list(source) == log.records()
        assert source.count_hint() == len(log)

    def test_accepts_plain_record_list(self):
        records = make_log().records()
        assert InMemorySource(records).read().records() == records


class TestFileSources:
    def test_all_sources_agree(self, on_disk):
        log, paths = on_disk
        for source in (
            CsvSource(paths["csv"], chunk_records=3),
            JsonlSource(paths["jsonl"], chunk_records=3),
            ColumnarSource(paths["columnar"]),
            InMemorySource(log, chunk_records=3),
        ):
            with source:
                assert source.read() == log

    def test_start_chunk_consistency(self, on_disk):
        _, paths = on_disk
        for source in (
            CsvSource(paths["csv"], chunk_records=4),
            JsonlSource(paths["jsonl"], chunk_records=4),
            ColumnarSource(paths["columnar"]),  # store written with 4/chunk
        ):
            full = [r.seq for c in source.open_chunks() for r in c]
            tail = [r.seq for c in source.open_chunks(start_chunk=1) for r in c]
            assert tail == full[4:]

    def test_columnar_count_hint_and_chunk_count(self, on_disk):
        _, paths = on_disk
        source = ColumnarSource(paths["columnar"])
        assert source.count_hint() == 10
        assert source.chunk_count() == 3

    def test_fingerprint_changes_with_file(self, on_disk):
        _, paths = on_disk
        before = CsvSource(paths["csv"]).fingerprint()
        assert str(paths["csv"].resolve()) in before
        with open(paths["csv"], "a", encoding="utf-8", newline="") as handle:
            handle.write("99,99.0,ux,,,,SELECT 1\n")
        assert CsvSource(paths["csv"]).fingerprint() != before

    def test_quarantine_channel_plumbs_through(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "seq,timestamp,user,ip,session,rows,sql\n"
            "0,1.0,u1,,,,SELECT a FROM t\n"
            "1,notatime,u1,,,,SELECT b FROM t\n",
            encoding="utf-8",
        )
        channel = QuarantineChannel()
        log = CsvSource(path, errors="quarantine", channel=channel).read()
        assert len(log) == 1
        assert len(channel) == 1


class TestOpenLog:
    def test_sniffing(self, on_disk):
        _, paths = on_disk
        assert sniff_format(paths["csv"]) == "csv"
        assert sniff_format(paths["jsonl"]) == "jsonl"
        assert sniff_format(paths["columnar"]) == "columnar"

    def test_sniff_rejects_unknown(self, tmp_path):
        target = tmp_path / "log.parquet"
        target.write_text("")
        with pytest.raises(ValueError, match="cannot sniff"):
            sniff_format(target)
        with pytest.raises(ValueError, match="not a columnar store"):
            sniff_format(tmp_path)

    def test_open_log_returns_right_adapter(self, on_disk):
        _, paths = on_disk
        assert isinstance(open_log(paths["csv"]), CsvSource)
        assert isinstance(open_log(paths["jsonl"]), JsonlSource)
        assert isinstance(open_log(paths["columnar"]), ColumnarSource)

    def test_format_override(self, on_disk, tmp_path):
        log, paths = on_disk
        odd = tmp_path / "log.dat"
        odd.write_bytes(paths["jsonl"].read_bytes())
        assert open_log(odd, format="jsonl").read() == log

    def test_exported_at_top_level(self, on_disk):
        log, paths = on_disk
        assert repro.open_log(paths["csv"]).read() == log


class TestAsSource:
    def test_existing_source_not_owned(self):
        source = InMemorySource(make_log())
        resolved, owned = as_source(source)
        assert resolved is source and owned is False

    def test_path_and_log_are_owned(self, on_disk):
        log, paths = on_disk
        for value in (paths["csv"], str(paths["csv"]), log, log.records()):
            resolved, owned = as_source(value)
            assert isinstance(resolved, LogSource) and owned is True
            assert resolved.read().records() == log.records()


class TestDeprecatedReaders:
    def test_read_csv_warns_once_and_forwards(self, on_disk):
        log, paths = on_disk
        from repro.log import read_csv

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = read_csv(paths["csv"])
        assert result == log
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "open_log" in str(deprecations[0].message)

    def test_read_jsonl_warns_once_and_forwards(self, on_disk):
        log, paths = on_disk
        from repro.log import read_jsonl

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = read_jsonl(paths["jsonl"])
        assert result == log
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
