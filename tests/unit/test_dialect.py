"""Unit tests for dialect knowledge (aggregates, function tables)."""

import pytest

from repro.sqlparser import ast, parse_select
from repro.sqlparser.dialect import (
    AGGREGATE_FUNCTIONS,
    TABLE_VALUED_FUNCTIONS,
    contains_aggregate,
    is_aggregate_call,
)


def expr_of(sql):
    return parse_select(sql).items[0].expr


class TestAggregateDetection:
    @pytest.mark.parametrize("name", sorted(AGGREGATE_FUNCTIONS))
    def test_known_aggregates(self, name):
        assert is_aggregate_call(expr_of(f"SELECT {name}(a) FROM t"))

    def test_case_insensitive(self):
        assert is_aggregate_call(expr_of("SELECT COUNT(*) FROM t"))

    def test_scalar_function_is_not_aggregate(self):
        assert not is_aggregate_call(expr_of("SELECT abs(a) FROM t"))

    def test_column_is_not_aggregate(self):
        assert not is_aggregate_call(expr_of("SELECT a FROM t"))


class TestContainsAggregate:
    def test_nested_in_arithmetic(self):
        assert contains_aggregate(expr_of("SELECT max(a) - min(a) FROM t"))

    def test_nested_in_scalar_function(self):
        assert contains_aggregate(expr_of("SELECT abs(sum(a)) FROM t"))

    def test_plain_expression(self):
        assert not contains_aggregate(expr_of("SELECT a + b FROM t"))

    def test_subquery_aggregates_are_not_counted(self):
        """An aggregate inside a scalar subquery belongs to the subquery,
        not to the outer item — the outer query is not grouped by it."""
        expr = expr_of("SELECT (SELECT max(a) FROM t) FROM u")
        assert not contains_aggregate(expr)

    def test_case_arms_are_searched(self):
        expr = expr_of("SELECT CASE WHEN count(*) > 1 THEN 1 ELSE 0 END FROM t")
        assert contains_aggregate(expr)


class TestTableValuedFunctions:
    def test_sky_functions_registered(self):
        assert "fgetnearbyobjeq" in TABLE_VALUED_FUNCTIONS
        assert "fgetobjfromrect" in TABLE_VALUED_FUNCTIONS

    def test_output_columns_include_objid(self):
        for columns in TABLE_VALUED_FUNCTIONS.values():
            assert "objid" in columns
