"""Unit tests for the hash equi-join fast path and IN-list set cache.

Semantics must be identical to the nested-loop path; these tests pin the
corner cases (NULL keys, numeric type mixing, case-insensitive strings,
non-equi fallback)."""

import pytest

from repro.engine import Column, Database, TableSchema


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        TableSchema("l", (Column("k"), Column("v"))),
        [
            {"k": 1, "v": "a"},
            {"k": 2.0, "v": "b"},
            {"k": None, "v": "c"},
            {"k": "X", "v": "d"},
        ],
    )
    database.create_table(
        TableSchema("r", (Column("k"), Column("w"))),
        [
            {"k": 1.0, "w": 10},
            {"k": 2, "w": 20},
            {"k": None, "w": 30},
            {"k": "x", "w": 40},
        ],
    )
    return database


class TestHashJoinSemantics:
    def test_numeric_int_float_keys_match(self, db):
        rows = db.execute(
            "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k"
        ).rows
        assert ("a", 10) in rows  # 1 joins 1.0
        assert ("b", 20) in rows  # 2.0 joins 2

    def test_string_keys_case_insensitive(self, db):
        rows = db.execute("SELECT l.v, r.w FROM l JOIN r ON l.k = r.k").rows
        assert ("d", 40) in rows  # 'X' joins 'x'

    def test_null_keys_never_join(self, db):
        rows = db.execute("SELECT l.v, r.w FROM l JOIN r ON l.k = r.k").rows
        assert not any(v == "c" for v, _ in rows)
        assert not any(w == 30 for _, w in rows)

    def test_left_join_pads_unmatched_and_null_keys(self, db):
        rows = db.execute(
            "SELECT l.v, r.w FROM l LEFT JOIN r ON l.k = r.k ORDER BY v"
        ).rows
        assert ("c", None) in rows

    def test_right_join_keeps_unmatched_right(self, db):
        rows = db.execute(
            "SELECT l.v, r.w FROM l RIGHT JOIN r ON l.k = r.k"
        ).rows
        assert (None, 30) in rows

    def test_reversed_condition_still_hashes(self, db):
        forward = db.execute("SELECT l.v, r.w FROM l JOIN r ON l.k = r.k").rows
        reversed_ = db.execute("SELECT l.v, r.w FROM l JOIN r ON r.k = l.k").rows
        assert sorted(forward, key=str) == sorted(reversed_, key=str)

    def test_duplicate_keys_produce_all_combinations(self):
        database = Database()
        database.create_table(
            TableSchema("a", (Column("k"),)), [{"k": 1}, {"k": 1}]
        )
        database.create_table(
            TableSchema("b", (Column("k"),)), [{"k": 1}, {"k": 1}, {"k": 1}]
        )
        rows = database.execute(
            "SELECT a.k FROM a JOIN b ON a.k = b.k"
        ).rows
        assert len(rows) == 6

    def test_non_equi_condition_falls_back(self):
        # < joins must still work (nested loop path)
        database = Database()
        database.create_table(TableSchema("a", (Column("k"),)), [{"k": 1}, {"k": 5}])
        database.create_table(TableSchema("b", (Column("k"),)), [{"k": 2}])
        rows = database.execute("SELECT a.k FROM a JOIN b ON a.k < b.k").rows
        assert rows == [(1,)]

    def test_condition_on_expression_falls_back(self, db):
        rows = db.execute(
            "SELECT l.v FROM l JOIN r ON l.k = r.k + 0"
        ).rows
        assert ("a",) in rows

    def test_matches_nested_loop_on_where_style_join(self, db):
        explicit = db.execute("SELECT l.v, r.w FROM l JOIN r ON l.k = r.k").rows
        comma = db.execute("SELECT l.v, r.w FROM l, r WHERE l.k = r.k").rows
        assert sorted(explicit, key=str) == sorted(comma, key=str)


class TestInListSetCache:
    def test_big_constant_in_list(self, db):
        values = ", ".join(str(i) for i in range(1000))
        rows = db.execute(f"SELECT v FROM l WHERE k IN ({values})").rows
        assert sorted(rows) == [("a",), ("b",)]

    def test_case_insensitive_string_in_list(self, db):
        rows = db.execute("SELECT v FROM l WHERE k IN ('x')").rows
        assert rows == [("d",)]

    def test_negated_cached_list(self, db):
        rows = db.execute("SELECT v FROM l WHERE k NOT IN (1)").rows
        # NULL k row is excluded by SQL semantics; 'X' and 2.0 remain
        assert sorted(rows) == [("b",), ("d",)]

    def test_non_constant_items_still_work(self, db):
        rows = db.execute("SELECT v FROM l WHERE k IN (v, 1)").rows
        assert ("a",) in rows
