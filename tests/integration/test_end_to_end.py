"""End-to-end integration: synthetic workload → pipeline → ground truth.

These tests assert the *detector quality* against the generator's planted
truth — the reproduction's stand-in for the paper's expert evaluation
(Sections 6.6/6.7) — and the headline log-shape claims of Section 6.3/6.4.
"""

import pytest

from repro.antipatterns import DetectionContext
from repro.patterns import SwsConfig
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.workload import score_detection, skyserver_catalog


@pytest.fixture(scope="module")
def pipeline_result(small_workload):
    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        ),
        sws=SwsConfig(),
    )
    return CleaningPipeline(config).run(small_workload.log)


def detected_seqs(result, label):
    return {
        seq
        for instance in result.antipatterns
        if instance.label == label
        for seq in instance.record_seqs()
    }


class TestStifleDetectionQuality:
    @pytest.mark.parametrize("label", ["DW-Stifle", "DS-Stifle", "DF-Stifle"])
    def test_high_recall_and_precision(self, pipeline_result, small_workload, label):
        truth = small_workload.truth.seqs_with_label(label)
        detected = detected_seqs(pipeline_result, label)
        precision, recall = score_detection(detected, truth)
        assert recall > 0.85, f"{label} recall {recall:.2f}"
        assert precision > 0.85, f"{label} precision {precision:.2f}"


class TestSncDetection:
    def test_all_planted_snc_found(self, pipeline_result, small_workload):
        truth = small_workload.truth.seqs_with_label("SNC")
        detected = detected_seqs(pipeline_result, "SNC")
        assert truth <= detected


class TestCthDetection:
    def test_planted_hunts_found(self, pipeline_result, small_workload):
        truth = small_workload.truth.seqs_with_label("CTH-candidate")
        detected = detected_seqs(pipeline_result, "CTH-candidate")
        _, recall = score_detection(detected, truth)
        assert recall > 0.6

    def test_oracle_separates_real_from_false(self, pipeline_result, small_workload):
        """The think-time oracle should agree with the planted labels on
        a clear majority of detected planted hunts."""
        truth_groups = small_workload.truth.groups_with_label("CTH-candidate")
        seq_to_real = {}
        for group in truth_groups:
            for seq in group.seqs:
                seq_to_real[seq] = bool(group.cth_real)
        agreements, total = 0, 0
        for instance in pipeline_result.antipatterns:
            if instance.label != "CTH-candidate":
                continue
            seqs = [s for s in instance.record_seqs() if s in seq_to_real]
            if not seqs:
                continue  # incidentally-shaped candidate, not planted
            total += 1
            planted = seq_to_real[seqs[0]]
            if planted == bool(instance.details["oracle_real"]):
                agreements += 1
        assert total > 0
        assert agreements / total > 0.8


class TestDuplicates:
    def test_planted_duplicates_removed(self, pipeline_result, small_workload):
        truth = small_workload.truth.duplicate_seqs()
        removed = len(small_workload.log) - len(pipeline_result.dedup.log)
        # every planted reload is removed; a few incidental identical
        # queries may be removed too
        assert removed >= len(truth)
        kept_seqs = {record.seq for record in pipeline_result.dedup.log}
        assert not (truth & kept_seqs)


class TestLogShape:
    def test_select_share_high(self, pipeline_result):
        overview = pipeline_result.overview()
        assert overview.select_count / overview.original_size > 0.9

    def test_cleaning_shrinks_log_substantially(self, pipeline_result):
        """Section 6.3: cleaning yielded a 27.5 % size reduction."""
        overview = pipeline_result.overview()
        reduction = 1.0 - overview.final_size / overview.original_size
        assert 0.10 < reduction < 0.60

    def test_antipatterns_among_top_patterns_before_cleaning(self, pipeline_result):
        """Section 6.4: 6 of the top 15 patterns are antipatterns."""
        top = pipeline_result.registry.top(15)
        flagged = [
            s
            for s in top
            if s.antipattern_types - {"SWS"}  # antipatterns proper
        ]
        assert len(flagged) >= 2

    def test_solvable_instances_all_solved(self, pipeline_result):
        solve = pipeline_result.solve_result
        assert not solve.skipped_conflicts or len(solve.solved) > 0
        assert len(solve.solved) > 0

    def test_clean_log_reparses_without_new_errors(self, pipeline_result):
        from repro.pipeline import parse_log

        stage = parse_log(pipeline_result.clean_log)
        assert not stage.syntax_errors

    def test_residual_solvables_shrink_and_converge(self, pipeline_result):
        """Section 5.5: after one pass some solvable antipatterns can
        remain (the paper measured 0.09 %).  On the synthetic log the
        DS-Stifle rewrites legitimately chain into second-order
        DW-Stifles, so the residual is larger — but it must be much
        smaller than the first-pass share, and repeated passes must
        converge to (near) zero."""
        config = pipeline_result.config

        def solvable_share(result):
            queries = sum(
                len(a.queries) for a in result.antipatterns if a.solvable
            )
            return queries / max(len(result.parse_stage.parsed_log), 1)

        first_share = solvable_share(pipeline_result)
        second = CleaningPipeline(config).run(pipeline_result.clean_log)
        second_share = solvable_share(second)
        assert second_share < first_share / 2
        third = CleaningPipeline(config).run(second.clean_log)
        assert solvable_share(third) < 0.02


class TestSws:
    def test_sws_crawler_flagged(self, pipeline_result, small_workload):
        assert pipeline_result.sws_report is not None
        truth = small_workload.truth.seqs_with_label("SWS")
        sws_units = {s.unit for s in pipeline_result.sws_report.patterns}
        covered = {
            seq
            for instance in pipeline_result.mining.instances
            if instance.unit in sws_units
            for query in instance.queries
            for seq in [query.record.seq]
        }
        _, recall = score_detection(covered, truth)
        assert recall > 0.7
