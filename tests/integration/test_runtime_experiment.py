"""Integration: the Section 6.3 runtime experiment on the engine.

The paper ran 10 222 stifle queries (4 450 s) against SkyServer and their
254 rewrites (152 s) — a 29.3× speedup from a ~40× statement reduction.
Here the same comparison runs on the in-memory engine with the calibrated
cost model; we assert the *shape*: large statement reduction, large
modelled speedup, and identical information content (validated rewrites).
"""

import pytest

from repro.antipatterns import DetectionContext
from repro.engine import CostModel, compare_workloads
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.rewrite.validation import validate_all
from repro.workload import skyserver_catalog


@pytest.fixture(scope="module")
def stifle_result(executable_workload):
    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        )
    )
    return CleaningPipeline(config).run(executable_workload.log)


def stifle_slice(result):
    """Original statements of all solved stifle instances + rewrites."""
    originals, rewrites = [], []
    for solved in result.solve_result.solved:
        if "Stifle" not in solved.instance.label:
            continue
        originals.extend(query.record.sql for query in solved.instance.queries)
        rewrites.append(solved.replacement_sql)
    return originals, rewrites


class TestRuntimeExperiment:
    def test_statement_reduction_is_large(self, stifle_result):
        originals, rewrites = stifle_slice(stifle_result)
        assert len(originals) > 50
        reduction = len(originals) / len(rewrites)
        assert reduction > 3.0  # paper: ~40× on 7-year bot runs

    def test_modelled_speedup_is_large(self, sky_database, stifle_result):
        originals, rewrites = stifle_slice(stifle_result)
        _, original_stats = sky_database.execute_many(originals)
        _, rewritten_stats = sky_database.execute_many(rewrites)
        comparison = compare_workloads(
            original_stats, rewritten_stats, CostModel()
        )
        assert comparison.speedup > 2.0
        assert comparison.statement_reduction == pytest.approx(
            len(originals) / len(rewrites)
        )

    def test_rewrites_validated_equivalent(self, sky_database, stifle_result):
        solved = [
            s
            for s in stifle_result.solve_result.solved
            if "Stifle" in s.instance.label
        ][:40]
        reports = validate_all(sky_database, solved)
        comparable = [r for r in reports if r.comparable]
        assert comparable, "no validatable rewrites found"
        failures = [r for r in comparable if not r.equivalent]
        assert not failures, [f.reason for f in failures]
