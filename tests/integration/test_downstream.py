"""Integration: the Section 6.9 downstream clustering experiment."""

import pytest

from repro.analysis import ds_cluster_sizes, run_downstream_experiment
from repro.antipatterns import DetectionContext
from repro.pipeline import PipelineConfig
from repro.workload import WorkloadConfig, generate, skyserver_catalog

THRESHOLDS = (0.1, 0.5, 0.9)


@pytest.fixture(scope="module")
def report():
    workload = generate(WorkloadConfig(seed=21, scale=0.08))
    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        )
    )
    return run_downstream_experiment(
        workload.log, thresholds=THRESHOLDS, config=config
    )


class TestDownstreamExperiment:
    def test_all_variants_and_thresholds_present(self, report):
        assert set(report.series) == {"raw", "clean", "removal"}
        for series in report.series.values():
            assert set(series.results) == set(THRESHOLDS)

    def test_variant_sizes_ordered(self, report):
        """removal < clean < raw (rewriting keeps one query per instance,
        removal drops them all — Section 6.9)."""
        sizes = report.variant_sizes
        assert sizes["removal"] < sizes["clean"] < sizes["raw"]

    def test_raw_has_most_clusters(self, report):
        """Fig. 3: the raw log's clusters are 'too numerous to be
        analyzed individually'."""
        for threshold in THRESHOLDS:
            raw = report.result("raw", threshold).cluster_count
            clean = report.result("clean", threshold).cluster_count
            removal = report.result("removal", threshold).cluster_count
            assert raw > clean >= removal * 0.9

    def test_removal_clusters_bigger_on_average(self, report):
        for threshold in THRESHOLDS:
            raw = report.result("raw", threshold).average_size
            removal = report.result("removal", threshold).average_size
            assert removal >= raw * 0.8

    def test_removal_clusters_found_in_raw(self, report):
        """The paper found all removal-log clusters in the raw log too —
        removing antipatterns removes noise, not signal.  We check the
        representative regions of removal clusters appear in raw."""
        raw = report.result("raw", 0.5)
        removal = report.result("removal", 0.5)
        raw_keys = {
            cluster.representative_region.key() for cluster in raw.clusters
        }
        found = sum(
            1
            for cluster in removal.clusters
            if cluster.representative_region.key() in raw_keys
        )
        assert found / max(len(removal.clusters), 1) > 0.7

    def test_ds_clusters_shrink_after_cleaning(self, report):
        """Fig. 4(c): DS-clusters in the clean log are smaller than in
        the raw log (two statements merged into one)."""
        pairs = ds_cluster_sizes(report, threshold=0.9, top=10)
        assert pairs, "no DS clusters found"
        clean_sizes = [c for c, _ in pairs if c > 0]
        raw_sizes = [r for _, r in pairs if r is not None]
        assert clean_sizes and raw_sizes
        mean_clean = sum(clean_sizes) / len(clean_sizes)
        mean_raw = sum(raw_sizes) / len(raw_sizes)
        # the paper's Fig. 4(c): raw DS-clusters ≈ 2× the cleaned ones
        assert mean_raw > mean_clean * 1.2
