"""Failure injection: hostile and degenerate inputs end to end.

A cleaning framework for public-facing logs must never die on weird
input; Section 5.3 demands misparses be classified and excluded.  These
tests feed the full pipeline degenerate logs and assert graceful,
accounted behaviour.
"""

import math

import pytest

from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.pipeline import CleaningPipeline, PipelineConfig, StreamingCleaner


def run(records):
    return CleaningPipeline(
        PipelineConfig(detection=DetectionContext(key_columns=frozenset({"id"})))
    ).run(QueryLog(records))


class TestDegenerateLogs:
    def test_empty_statements(self):
        result = run(
            [LogRecord(seq=i, sql="", timestamp=float(i)) for i in range(3)]
        )
        assert len(result.clean_log) == 0
        assert result.overview().syntax_errors <= 3

    def test_whitespace_only_statements(self):
        result = run([LogRecord(seq=0, sql="   \n\t  ", timestamp=0.0)])
        assert result.overview().syntax_errors == 1

    def test_wide_statement_parses(self):
        predicates = " AND ".join(f"c{i} = {i}" for i in range(150))
        sql = f"SELECT a FROM t WHERE {predicates}"
        result = run([LogRecord(seq=0, sql=sql, timestamp=0.0)])
        assert len(result.parse_stage.queries) == 1

    def test_pathologically_deep_statement_is_classified_not_fatal(self):
        predicates = " AND ".join(f"c{i} = {i}" for i in range(3000))
        sql = f"SELECT a FROM t WHERE {predicates}"
        result = run([LogRecord(seq=0, sql=sql, timestamp=0.0)])
        # either the tree walkers cope, or the statement is excluded and
        # counted — both acceptable; a crash is not
        accounted = len(result.parse_stage.queries) + len(
            result.parse_stage.syntax_errors
        )
        assert accounted == 1

    def test_deeply_nested_parentheses(self):
        sql = "SELECT a FROM t WHERE " + "(" * 60 + "x = 1" + ")" * 60
        result = run([LogRecord(seq=0, sql=sql, timestamp=0.0)])
        assert len(result.parse_stage.queries) == 1

    def test_deeply_nested_subqueries(self):
        sql = "SELECT a FROM t WHERE x IN " + "(SELECT x FROM t WHERE x IN " * 20
        sql += "(1)" + ")" * 20
        result = run([LogRecord(seq=0, sql=sql, timestamp=0.0)])
        # either parses or is a counted syntax error — never a crash
        assert (
            len(result.parse_stage.queries)
            + len(result.parse_stage.syntax_errors)
            == 1
        )

    def test_non_ascii_statements(self):
        result = run(
            [
                LogRecord(
                    seq=0,
                    sql="SELECT a FROM t WHERE name = 'δφ—🌌'",
                    timestamp=0.0,
                )
            ]
        )
        assert len(result.parse_stage.queries) == 1

    def test_identical_timestamps_keep_seq_order(self):
        records = [
            LogRecord(seq=i, sql=f"SELECT a FROM t WHERE id = {i}", timestamp=5.0,
                      user="u")
            for i in range(4)
        ]
        result = run(records)
        # all four have the same timestamp; the stifle run must still be
        # found in seq order and solved into one IN-list
        assert "IN (0, 1, 2, 3)" in result.clean_log.statements()[0]

    def test_unsorted_input_records(self):
        records = [
            LogRecord(seq=1, sql="SELECT a FROM t WHERE id = 2", timestamp=2.0, user="u"),
            LogRecord(seq=0, sql="SELECT a FROM t WHERE id = 1", timestamp=1.0, user="u"),
        ]
        result = run(records)  # QueryLog sorts on construction
        assert len(result.clean_log) == 1

    def test_negative_timestamps(self):
        records = [
            LogRecord(seq=i, sql=f"SELECT a FROM t WHERE id = {i}",
                      timestamp=-1000.0 + i, user="u")
            for i in range(3)
        ]
        result = run(records)
        assert len(result.clean_log) == 1

    def test_extreme_future_timestamp_gap(self):
        records = [
            LogRecord(seq=0, sql="SELECT a FROM t WHERE id = 1", timestamp=0.0, user="u"),
            LogRecord(seq=1, sql="SELECT a FROM t WHERE id = 2", timestamp=1e15, user="u"),
        ]
        result = run(records)
        # gap far exceeds block_gap: two blocks, no stifle
        assert len(result.clean_log) == 2

    def test_mixed_garbage_ratio_accounted(self):
        records = []
        for i in range(30):
            if i % 3 == 0:
                sql = "DROP TABLE x"
            elif i % 3 == 1:
                sql = "SELECT ' unterminated"
            else:
                sql = f"SELECT a FROM t WHERE id = {i}"
            records.append(LogRecord(seq=i, sql=sql, timestamp=float(i) * 10,
                                     user=f"u{i % 5}"))
        result = run(records)
        overview = result.overview()
        assert overview.non_select == 10
        assert overview.syntax_errors == 10
        assert len(result.parse_stage.queries) == 10

    def test_streaming_on_garbage(self):
        records = [
            LogRecord(seq=0, sql="SELECT '", timestamp=0.0, user="u"),
            LogRecord(seq=1, sql="SELECT a FROM t WHERE id = 1", timestamp=1.0, user="u"),
        ]
        cleaner = StreamingCleaner()
        cleaned = cleaner.run(QueryLog(records))
        assert cleaner.stats.syntax_errors == 1
        assert len(cleaned) == 1

    def test_thousand_users_one_query_each(self):
        records = [
            LogRecord(seq=i, sql=f"SELECT a FROM t WHERE id = {i}",
                      timestamp=float(i) * 0.01, user=f"u{i}")
            for i in range(1000)
        ]
        result = run(records)
        # no same-user adjacency: nothing is a stifle
        assert len(result.clean_log) == 1000
        assert result.antipatterns == []
