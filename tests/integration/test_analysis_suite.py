"""Integration: the full analysis suite over one pipeline run.

A downstream operator runs the cleaner once and consumes *all* the
analyses from the same result: the Table-5 overview, the CSV report, the
traffic report, the bot classifier, the recommender and the hotspot
extraction.  This test asserts the cross-module numbers agree with each
other — the sum of the parts equals the whole.
"""

import csv

import pytest

from repro.analysis.behavior import classify_users
from repro.analysis.clustering import cluster_queries
from repro.analysis.interests import extract_hotspots
from repro.analysis.traffic import traffic_report
from repro.antipatterns import DetectionContext
from repro.patterns import SwsConfig
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.pipeline.report import export_report
from repro.recommend import TemplateTransitionModel, split_blocks
from repro.workload import skyserver_catalog


@pytest.fixture(scope="module")
def suite_result(small_workload):
    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        ),
        sws=SwsConfig(),
    )
    return CleaningPipeline(config).run(small_workload.log)


class TestCrossModuleConsistency:
    def test_overview_matches_parse_stage(self, suite_result):
        overview = suite_result.overview()
        # parsed + classified failures == the deduplicated input, exactly
        assert (
            len(suite_result.parse_stage.queries)
            + overview.non_select
            + overview.syntax_errors
            == overview.after_dedup
        )

    def test_registry_covers_all_parsed_queries(self, suite_result):
        assert suite_result.registry.total_queries() == len(
            suite_result.parse_stage.queries
        )

    def test_traffic_report_matches_log(self, suite_result, small_workload):
        report = traffic_report(
            small_workload.log, suite_result.parse_stage.queries
        )
        assert report.total_queries == len(small_workload.log)
        assert ("photoprimary" in dict(report.top_tables))

    def test_behavior_covers_all_parsed_users(self, suite_result):
        verdicts = classify_users(suite_result)
        parsed_users = {q.user for q in suite_result.parse_stage.queries}
        assert set(verdicts) == parsed_users

    def test_recommender_trains_on_every_block(self, suite_result):
        train, test = split_blocks(suite_result.mining.blocks, 0.8)
        assert len(train) + len(test) == len(suite_result.mining.blocks)
        model = TemplateTransitionModel().train_on_blocks(
            suite_result.mining.blocks
        )
        parsed_templates = {
            q.template_id for q in suite_result.parse_stage.queries
        }
        assert model.vocabulary_size == len(parsed_templates)

    def test_hotspots_from_clean_clustering(self, suite_result):
        from repro.pipeline import parse_log

        clean_queries = parse_log(suite_result.clean_log).queries
        clustering = cluster_queries(clean_queries, threshold=0.5)
        hotspots = extract_hotspots(clustering)
        assert hotspots
        covered = sum(spot.query_count for spot in hotspots)
        assert covered <= len(clean_queries)

    def test_csv_report_numbers_match(self, suite_result, tmp_path):
        written = export_report(suite_result, tmp_path)
        with open(written["patterns"], newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(suite_result.registry)
        total_from_csv = sum(int(row["query_count"]) for row in rows)
        assert total_from_csv == suite_result.registry.total_queries()
        with open(written["solved"], newline="", encoding="utf-8") as handle:
            solved_rows = list(csv.DictReader(handle))
        assert len(solved_rows) == len(suite_result.solve_result.solved)

    def test_clean_plus_removed_accounts_for_parsed(self, suite_result):
        removed_by_solving = suite_result.solve_result.queries_removed
        assert (
            len(suite_result.clean_log) + removed_by_solving
            == len(suite_result.parse_stage.parsed_log)
        )
