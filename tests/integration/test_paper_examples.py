"""Integration tests encoding the paper's running examples end to end.

Each test cites the table/example of the paper it reproduces.
"""

import pytest

from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.pipeline import CleaningPipeline, PipelineConfig

KEYS = frozenset({"empid", "id", "objid", "specobjid", "name", "htmid", "bestobjid"})


def run_pipeline(timed_statements, user="u1", **config_kwargs):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts) in enumerate(timed_statements)
    )
    config = PipelineConfig(
        detection=DetectionContext(key_columns=KEYS), **config_kwargs
    )
    return CleaningPipeline(config).run(log)


class TestTable1And2:
    """The paper's running example: Table 1's session, parsed and marked
    like Table 2, cleaned like Table 3."""

    STATEMENTS = [
        ("SELECT E.Id FROM Employees E WHERE E.department = 'sales'", 0.0),
        ("SELECT E.name, E.surname FROM Employees E WHERE E.id = 12", 1.0),
        ("SELECT E.name, E.surname FROM Employees E WHERE E.id = 15", 2.0),
        ("SELECT E.name, E.surname FROM Employees E WHERE E.id = 16", 3.0),
    ]

    def test_table2_marks(self):
        result = run_pipeline(self.STATEMENTS)
        labels = {
            (instance.label, instance.record_seqs())
            for instance in result.antipatterns
        }
        assert ("CTH-candidate", (0, 1, 2, 3)) in labels
        assert ("DW-Stifle", (1, 2, 3)) in labels

    def test_table3_clean_log(self):
        result = run_pipeline(self.STATEMENTS)
        statements = result.clean_log.statements()
        assert len(statements) == 2
        assert statements[0] == self.STATEMENTS[0][0]
        assert "E.id IN (12, 15, 16)" in statements[1]

    def test_cth_stays_in_log_stifle_solved(self):
        result = run_pipeline(self.STATEMENTS)
        assert result.solve_result.solved_counts() == {"DW-Stifle": 1}
        assert len(result.solve_result.unsolvable) == 1


class TestExample5Stifle:
    """Example 5: a for-loop issuing SELECT * FROM T WHERE Id = <item>."""

    def test_loop_queries_form_one_dw_stifle(self):
        statements = [
            (f"SELECT * FROM T WHERE Id = {item}", 0.1 * i)
            for i, item in enumerate([7, 3, 9, 4])
        ]
        result = run_pipeline(statements)
        assert [a.label for a in result.antipatterns] == ["DW-Stifle"]
        assert result.clean_log.statements() == [
            "SELECT * FROM T WHERE Id IN (7, 3, 9, 4)"
        ]


class TestExamples9To14:
    def test_example_9_10(self):
        result = run_pipeline(
            [
                ("SELECT name FROM Employee WHERE empId = 8;", 0.0),
                ("SELECT name FROM Employee WHERE empId = 1;", 0.5),
            ]
        )
        assert result.clean_log.statements() == [
            "SELECT empId, name FROM Employee WHERE empId IN (8, 1)"
        ]

    def test_example_11_12(self):
        result = run_pipeline(
            [
                ("SELECT name FROM Employee WHERE empId=8;", 0.0),
                ("SELECT address, phone FROM Employee WHERE empId=8;", 0.5),
            ]
        )
        assert result.clean_log.statements() == [
            "SELECT name, address, phone FROM Employee WHERE empId = 8"
        ]

    def test_example_13_14(self):
        result = run_pipeline(
            [
                ("SELECT name FROM Employee WHERE empId = 8;", 0.0),
                ("SELECT address FROM EmployeeInfo WHERE empId = 8;", 0.5),
            ]
        )
        statements = result.clean_log.statements()
        assert len(statements) == 1
        assert "INNER JOIN EmployeeInfo" in statements[0]
        assert "WHERE t0.empId = 8" in statements[0]


class TestSection54Snc:
    def test_snc_definition_16_and_rewrite(self):
        result = run_pipeline(
            [
                ("SELECT * FROM Bugs WHERE assigned_to = NULL", 0.0),
                ("SELECT * FROM Bugs WHERE assigned_to <> NULL", 5.0),
            ]
        )
        assert result.clean_log.statements() == [
            "SELECT * FROM Bugs WHERE assigned_to IS NULL",
            "SELECT * FROM Bugs WHERE assigned_to IS NOT NULL",
        ]


class TestTables9And10:
    def test_candidate_1_is_false_cth(self):
        """Table 9: 27 seconds of human reflection between the queries."""
        result = run_pipeline(
            [
                (
                    "SELECT name, type FROM DBObjects WHERE type='U' AND name "
                    "NOT IN ('LoadEvents', 'QueryResults') ORDER BY name;",
                    0.0,
                ),
                ("SELECT description FROM DBObjects WHERE name='Galaxy'", 27.0),
            ]
        )
        cth = [a for a in result.antipatterns if a.label == "CTH-candidate"]
        assert len(cth) == 1
        assert cth[0].details["oracle_real"] is False

    def test_candidate_2_is_real_cth(self):
        """Table 10: both queries share the same timestamp."""
        result = run_pipeline(
            [
                ("SELECT * FROM dbo.fGetNearestObjEq(145.38708,0.12532,0.1);", 0.0),
                (
                    "SELECT plate, fiberID, mjd, SpecObjID FROM SpecObjAll "
                    "WHERE SpecObjID = 75094094447116288",
                    0.0,
                ),
            ]
        )
        cth = [a for a in result.antipatterns if a.label == "CTH-candidate"]
        assert len(cth) == 1
        assert cth[0].details["oracle_real"] is True


class TestExample7Pattern:
    def test_shoe_shop_pattern_mined_as_unit(self):
        """Example 7's BUY procedure: the SELECT part of the pattern
        recurs; the miner should find the periodic unit."""
        statements = []
        clock = 0.0
        for barcode in (111, 222, 333):
            statements.append(
                (f"SELECT model, size FROM BarCodesInfo WHERE id = {barcode}", clock)
            )
            statements.append(
                (f"SELECT count(*) FROM InPresence WHERE model = {barcode}", clock + 0.1)
            )
            clock += 1.0
        result = run_pipeline(statements)
        units = {len(stats.unit) for stats in result.registry}
        assert 2 in units  # the two-query unit was recognised
        two_unit = [s for s in result.registry if len(s.unit) == 2][0]
        assert two_unit.frequency == 3
