"""Integration: the Section 6.8 reduced-information experiment.

Running the framework on statements+timestamps only (no users/sessions)
should barely change pattern frequencies, because instances arrive in a
tight time window anyway; but SWS detection (which needs userPopularity)
degrades — exactly the paper's observations.
"""

import pytest

from repro.antipatterns import DetectionContext
from repro.patterns import SwsConfig
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.workload import skyserver_catalog


@pytest.fixture(scope="module")
def both_runs(small_workload):
    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        ),
        sws=SwsConfig(),
    )
    full = CleaningPipeline(config).run(small_workload.log)
    reduced = CleaningPipeline(config).run(small_workload.log.without_metadata())
    return full, reduced


class TestReducedInformation:
    def test_top_pattern_frequencies_stay_close(self, both_runs):
        full, reduced = both_runs
        full_top = {
            s.skeletons: s.frequency for s in full.registry.top(10)
        }
        reduced_by_skeleton = {
            s.skeletons: s.frequency for s in reduced.registry
        }
        compared = 0
        for skeletons, frequency in full_top.items():
            other = reduced_by_skeleton.get(skeletons)
            if other is None:
                continue
            compared += 1
            assert other == pytest.approx(frequency, rel=0.35), skeletons
        assert compared >= 5

    def test_clean_log_sizes_close(self, both_runs):
        """Paper: the reduced-input result set was 0.36 % smaller; we
        allow a few percent on the small log."""
        full, reduced = both_runs
        difference = abs(len(full.clean_log) - len(reduced.clean_log))
        assert difference / max(len(full.clean_log), 1) < 0.10

    def test_stifle_detection_survives_without_users(self, both_runs):
        full, reduced = both_runs
        full_stifles = sum(
            1 for a in full.antipatterns if a.label.endswith("Stifle")
        )
        reduced_stifles = sum(
            1 for a in reduced.antipatterns if a.label.endswith("Stifle")
        )
        assert reduced_stifles >= 0.8 * full_stifles

    def test_user_popularity_collapses_to_one_user(self, both_runs):
        _, reduced = both_runs
        assert all(s.user_popularity == 1 for s in reduced.registry)

    def test_sws_detection_limited_without_users(self, both_runs):
        """With one synthetic user, popularity thresholds lose their
        meaning: *everything* frequent looks like one user's crawl.  The
        paper notes low-popularity patterns become undetectable — i.e.
        the reduced run's SWS set is unreliable, not equal to the full
        run's."""
        full, reduced = both_runs
        full_units = {s.unit for s in full.sws_report.patterns}
        reduced_units = {s.unit for s in reduced.sws_report.patterns}
        assert full_units != reduced_units
