"""Golden-file regression test for the metrics ledger.

One canonical synthetic log (seed 2018, the paper's year) is cleaned by
the batch pipeline with the full SkyServer config, and the deterministic
part of its metrics ledger — ``PipelineMetrics.as_dict(include_timings=
False)`` — must match the JSON pinned under ``tests/golden/``.

Any behaviour change that shifts a counter (a parser fix that rescues
queries, a detector that finds more instances, a solver rule change)
fails here with a readable diff of exactly which numbers moved.  When
the change is intentional, re-pin with::

    pytest tests/golden --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.antipatterns import DetectionContext
from repro.patterns import SwsConfig
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.workload import WorkloadConfig, generate, skyserver_catalog

GOLDEN_PATH = Path(__file__).parent / "metrics_seed2018.json"


@pytest.fixture(scope="module")
def canonical_metrics():
    workload = generate(WorkloadConfig(seed=2018, scale=0.12))
    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        ),
        sws=SwsConfig(),
    )
    result = CleaningPipeline(config).run(workload.log)
    assert result.metrics is not None
    assert result.metrics.conservation_violations() == []
    return result.metrics.as_dict(include_timings=False)


def test_metrics_match_golden_file(canonical_metrics, update_golden):
    rendered = json.dumps(canonical_metrics, indent=2, sort_keys=True) + "\n"
    if update_golden:
        GOLDEN_PATH.write_text(rendered, encoding="utf-8")
        pytest.skip(f"rewrote {GOLDEN_PATH.name}")
    assert GOLDEN_PATH.exists(), (
        f"golden file {GOLDEN_PATH} missing — create it with "
        "`pytest tests/golden --update-golden`"
    )
    pinned = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert canonical_metrics == pinned, (
        "metrics ledger drifted from the golden file; if the change is "
        "intentional re-pin with `pytest tests/golden --update-golden`"
    )


def test_golden_file_is_nontrivial():
    """The pinned ledger must exercise the pipeline for real — guards
    against accidentally pinning a degenerate (e.g. empty-log) run."""
    pinned = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    stages = pinned["stages"]
    assert stages["dedup"]["counters"]["records_in"] > 1000
    assert stages["dedup"]["counters"]["duplicates_removed"] > 0
    assert stages["mine"]["counters"]["pattern_instances"] > 0
    assert stages["detect"]["counters"]["instances_detected"] > 0
    assert stages["detect"]["labels"]["antipatterns"]
    assert stages["solve"]["counters"]["instances_solved"] > 0
    assert "registry" in stages
