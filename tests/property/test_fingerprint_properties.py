"""Property-based differential fuzz of the fingerprint scanner.

The template cache's fast path rests on one contract: whenever two
statements receive the same fingerprint key, instantiating one from the
other's cached prototype must be indistinguishable from a fresh full
parse.  These tests generate SkyServer-dialect SQL — delimited
identifiers in all three forms, numeric literals across their edge
shapes, strings with doubled-quote escapes — render each template with
two independent constant assignments, and check:

* equal keys ⇒ identical query templates (Definition 4), and
* the cache's splice (eager) or lazy bind is byte-equal to a fresh
  parse: same :class:`ParsedQuery`, same clause texts, same formatted
  statement.

Statements the scanner punts on (``None``) or the parser rejects are
skipped — the contract only binds on the fast path's admission set.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.log.models import LogRecord
from repro.patterns.models import ParsedQuery
from repro.skeleton import build_template
from repro.skeleton.cache import TemplateCache
from repro.sqlparser import SqlError, format_sql, parse
from repro.sqlparser.lexer import fingerprint_statement

# ---------------------------------------------------------------------
# Generators: SkyServer-flavoured statements with constant "holes"

bare_names = st.sampled_from(
    ["objid", "ra", "DEC", "z", "name", "htmid", "bestObjID"]
)
identifiers = st.one_of(
    bare_names,
    bare_names.map(lambda n: f"[{n}]"),
    bare_names.map(lambda n: f'"{n}"'),
)
tables = st.sampled_from(["PhotoObj", "SpecObj", "photoprimary", "[Galaxy]"])

number_texts = st.one_of(
    st.integers(min_value=0, max_value=10**9).map(str),
    st.tuples(
        st.integers(min_value=0, max_value=999),
        st.integers(min_value=0, max_value=9999),
    ).map(lambda t: f"{t[0]}.{t[1]}"),
    st.integers(min_value=0, max_value=99).map(lambda n: f".{n}5"),
    st.integers(min_value=0, max_value=99).map(lambda n: f"{n}."),
    st.integers(min_value=1, max_value=40).map(lambda n: f"1.{n}e-3"),
    st.integers(min_value=1, max_value=40).map(lambda n: f"{n}.e5"),
    st.integers(min_value=1, max_value=40).map(lambda n: f"{n}e+2"),
    st.integers(min_value=0, max_value=500).map(lambda n: f"-{n}"),
)
string_texts = st.text(
    alphabet="abX 0'9_", min_size=0, max_size=8
).map(lambda s: "'" + s.replace("'", "''") + "'")
constants = st.one_of(number_texts, string_texts)

comparators = st.sampled_from(["=", "<>", ">", "<", ">=", "<="])


@st.composite
def statements(draw):
    """One statement template rendered with two constant assignments."""
    columns = ", ".join(
        draw(st.lists(identifiers, min_size=1, max_size=3, unique=True))
    )
    top = draw(st.sampled_from(["", "TOP 10 ", "TOP 5 "]))
    table = draw(tables)
    predicate_count = draw(st.integers(min_value=0, max_value=3))
    body_a, body_b = [], []
    for _ in range(predicate_count):
        column = draw(identifiers)
        theta = draw(comparators)
        body_a.append(f"{column} {theta} {draw(constants)}")
        body_b.append(f"{column} {theta} {draw(constants)}")
    where_a = " WHERE " + " AND ".join(body_a) if body_a else ""
    where_b = " WHERE " + " AND ".join(body_b) if body_b else ""
    order = draw(st.sampled_from(["", " ORDER BY 1", " ORDER BY 1 DESC"]))
    head = f"SELECT {top}{columns} FROM {table}"
    return head + where_a + order, head + where_b + order


def try_parse(rec: LogRecord):
    try:
        return ParsedQuery.from_statement(rec, parse(rec.sql))
    except SqlError:
        return None


def record(seq: int, sql: str) -> LogRecord:
    return LogRecord(seq=seq, timestamp=float(seq), user="u", sql=sql)


class TestFingerprintDifferential:
    @given(pair=statements())
    @settings(max_examples=300, deadline=None)
    def test_equal_keys_imply_equal_templates(self, pair):
        sql_a, sql_b = pair
        fp_a = fingerprint_statement(sql_a)
        fp_b = fingerprint_statement(sql_b)
        if fp_a is None or fp_b is None or fp_a.key != fp_b.key:
            return
        try:
            tree_a, tree_b = parse(sql_a), parse(sql_b)
        except SqlError:
            return
        assert build_template(tree_a) == build_template(tree_b)

    @given(pair=statements(), lazy=st.booleans())
    @settings(max_examples=300, deadline=None)
    def test_cache_output_byte_equal_to_fresh_parse(self, pair, lazy):
        """Warm a cache with one rendering, fetch the other: whatever
        comes back (lazy bind, splice, or a safety-net full parse) must
        be indistinguishable from parsing the text directly."""
        sql_a, sql_b = pair
        rec_a, rec_b = record(0, sql_a), record(1, sql_b)
        proto = try_parse(rec_a)
        direct = try_parse(rec_b)
        if proto is None or direct is None:
            return
        cache = TemplateCache(lazy=lazy)
        if cache.fetch(rec_a) is None:
            cache.store(sql_a, proto)
        via_cache = cache.fetch(rec_b)
        if via_cache is None:
            cache.store(sql_b, try_parse(rec_b))
            via_cache = cache.fetch(record(2, sql_b))
            direct = try_parse(record(2, sql_b))
        assert not isinstance(via_cache, tuple)
        assert via_cache == direct
        assert via_cache.clauses == direct.clauses
        assert format_sql(via_cache.statement) == format_sql(direct.statement)
        assert via_cache.template_id == direct.template_id
        assert via_cache.outputs == direct.outputs
        assert via_cache.predicate_count == direct.predicate_count
        assert via_cache.equality_filter == direct.equality_filter
