"""Differential fuzz: the production scanner vs its pinned references.

Parse engine v3 replaced the per-character ``Lexer`` loop and the
fingerprint master-regex with one table-driven scanner pass; v4
replaced that pass's compiled alternation with a first-character
dispatch loop.  Each replacement is only safe if it is *bit-for-bit*
the same function: same tokens, same error messages at the same
positions, same fingerprints (or the same refusal to fingerprint).

This module pins that equivalence three ways:

* against the per-character ``Lexer`` kept verbatim as the in-tree
  reference implementation (``tests/property/pinned_lexer.py`` — it
  shipped in ``lexer.py`` through v3 and moved here when v4 removed
  the production escape hatch),
* against a **frozen** copy of the full pre-v3 module (master-regex
  fingerprint included) exec'd straight out of git history, and
* against the **frozen v3 scanner** (rev ``ff621b5``, the alternation
  the v4 dispatch loop replaced), also exec'd from git history —
  so neither reference can drift along with the code under test.

The @example corpus carries every divergence candidate found while
auditing the old ``_raw_scan`` against the DFA — scientific-notation
edges (``1.e5``), quote escapes inside delimited identifiers
(``[a''b]``), folded unary minus, trailing-dot numbers.
"""

import subprocess
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import example, given, settings
from pinned_lexer import Lexer

from repro.sqlparser.errors import LexerError
from repro.sqlparser.scanner import fingerprint_statement, scan

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The last commit whose lexer.py still carries the pre-v3 master-regex
#: fingerprint path.  Frozen here so the reference is immutable.
LEGACY_REV = "90f9fda"

#: The v3 commit whose scanner.py carries the compiled-alternation scan
#: loop the v4 dispatch table replaced.
V3_REV = "ff621b5"

_legacy_module_cache = {}


def _frozen_source(rev, path):
    try:
        return subprocess.run(
            ["git", "show", f"{rev}:{path}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        pytest.skip(
            f"git history for {rev} unavailable (shallow clone?); "
            "the in-tree pinned Lexer differential still ran"
        )


def legacy_module():
    """The frozen pre-v3 lexer module, exec'd from git history."""
    if "mod" not in _legacy_module_cache:
        source = _frozen_source(
            LEGACY_REV, "src/repro/sqlparser/lexer.py"
        ).replace(
            "from .errors import", "from repro.sqlparser.errors import"
        ).replace("from .tokens import", "from repro.sqlparser.tokens import")
        namespace = {"__name__": "legacy_lexer"}
        exec(compile(source, "legacy_lexer.py", "exec"), namespace)
        _legacy_module_cache["mod"] = namespace
    return _legacy_module_cache["mod"]


def v3_scanner_module():
    """The frozen v3 alternation scanner, exec'd from git history.

    Its ``.tokens`` import is rebound to the live module (every token
    construction in it is positional, so the v4 ``NamedTuple`` slots
    straight in) — which makes the frozen scan's tokens directly
    ``==``-comparable to the dispatch loop's.
    """
    if "v3" not in _legacy_module_cache:
        source = _frozen_source(
            V3_REV, "src/repro/sqlparser/scanner.py"
        ).replace(
            "from .errors import", "from repro.sqlparser.errors import"
        ).replace("from .tokens import", "from repro.sqlparser.tokens import")
        namespace = {"__name__": "v3_scanner"}
        exec(compile(source, "v3_scanner.py", "exec"), namespace)
        _legacy_module_cache["v3"] = namespace
    return _legacy_module_cache["v3"]


arbitrary_text = st.text(max_size=120)

sql_ish_text = st.lists(
    st.sampled_from(
        [
            "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN",
            "BETWEEN", "LIKE", "NULL", "TOP", "AS", "ORDER", "BY",
            "a", "b", "t", "objid", "count", "*", ",", "(", ")",
            "=", "<", ">", "<>", "<=", ">=", "!=", "-", "+", "/", "%",
            "'x'", "'it''s'", "1", "2.5", ".5", "1.e5", "1e-3", "0x1F",
            "@v", "@@rowcount", ".", ";", "[objid]", '"objid"',
            "[a''b]", "--c", "/*c*/", "N'x'", "$1", "1.", "e5",
        ]
    ),
    max_size=25,
).map(" ".join)

#: Hand-picked divergence candidates from the _raw_scan audit.
EDGE_CASES = [
    "SELECT 1.e5",          # dot then exponent, no fraction digits
    "SELECT 1.E+10 FROM t",
    "SELECT .5e3",
    "SELECT a.5",           # dot-number after identifier: DOT + NUMBER
    "SELECT [a''b] FROM t",  # quote escape inside bracket identifier
    "SELECT \"a''b\"",
    "SELECT -5",            # folded unary minus
    "WHERE a < -5 AND b > - 5",
    "SELECT - -5",          # double unary: only the inner one folds
    "SELECT (-5)",
    "SELECT 1- -2",
    "SELECT 1.",            # trailing-dot number
    "SELECT 1.e",           # exponent marker with no digits
    "SELECT 0x1F, 0XgG",
    "SELECT 'it''s'",
    "SELECT ''",
    "SELECT '''",
    "SELECT N'x' FROM t",
    "SELECT @v, @@trancount",
    "SELECT a FROM t -- tail",
    "SELECT /* nested -- */ 1",
    "SELECT /*",
    "SELECT '",
    "SELECT [unterminated",
    "\x00\x01",
    "SELECT\t\r\n1",
]


def run_legacy_lexer(text):
    """Tokens-or-error from the pinned in-tree reference Lexer."""
    try:
        return Lexer(text).tokenize(), None
    except LexerError as error:
        return None, error


def run_frozen_lexer(text):
    """Tokens-or-error from the frozen pre-v3 git copy."""
    mod = legacy_module()
    try:
        return mod["Lexer"](text).tokenize(), None
    except LexerError as error:
        return None, error


def assert_same_outcome(text, reference):
    tokens, error = reference
    result = scan(text)
    if error is not None:
        assert result.tokens is None, (
            f"scanner tokenized what the lexer rejected: {text!r}"
        )
        assert result.error is not None
        assert str(result.error) == str(error), text
        assert (result.error.line, result.error.column) == (
            error.line,
            error.column,
        ), text
        assert result.fingerprint is None, text
    else:
        assert result.error is None, (
            f"scanner rejected what the lexer accepted: {text!r} "
            f"({result.error})"
        )
        assert result.tokens == tokens, text


class TestTokenDifferential:
    @given(arbitrary_text)
    @settings(max_examples=400, deadline=None)
    def test_arbitrary_text_matches_reference_lexer(self, text):
        assert_same_outcome(text, run_legacy_lexer(text))

    @given(sql_ish_text)
    @settings(max_examples=400, deadline=None)
    def test_sql_shaped_text_matches_reference_lexer(self, text):
        assert_same_outcome(text, run_legacy_lexer(text))

    @pytest.mark.parametrize("text", EDGE_CASES)
    def test_edge_corpus_matches_reference_lexer(self, text):
        assert_same_outcome(text, run_legacy_lexer(text))

    @pytest.mark.parametrize("text", EDGE_CASES)
    def test_edge_corpus_matches_frozen_lexer(self, text):
        assert_same_outcome(text, run_frozen_lexer(text))

    @given(sql_ish_text)
    @settings(max_examples=150, deadline=None)
    def test_sql_shaped_text_matches_frozen_lexer(self, text):
        assert_same_outcome(text, run_frozen_lexer(text))


class TestFingerprintDifferential:
    """One-pass fingerprints vs the frozen master-regex implementation."""

    @given(sql_ish_text)
    @example("SELECT 1.e5")
    @example("SELECT [a''b] FROM t WHERE x = -5")
    @example("SELECT - -5, 'it''s', .5e3")
    @settings(max_examples=400, deadline=None)
    def test_fingerprint_matches_frozen_implementation(self, text):
        legacy = legacy_module()["fingerprint_statement"](text)
        current = fingerprint_statement(text)
        if legacy is None:
            assert current is None, text
        else:
            assert current is not None, text
            assert current.key == legacy.key, text
            assert current.constants == legacy.constants, text
            assert current.spans == legacy.spans, text

    @pytest.mark.parametrize("text", EDGE_CASES)
    def test_edge_corpus_fingerprints_match(self, text):
        legacy = legacy_module()["fingerprint_statement"](text)
        current = fingerprint_statement(text)
        assert (current is None) == (legacy is None), text
        if legacy is not None:
            assert current == legacy, text


def assert_same_scan_as_v3(text):
    """The v4 dispatch scan vs the frozen v3 alternation scan."""
    frozen = v3_scanner_module()["scan"](text)
    current = scan(text)
    if frozen.error is not None:
        assert current.tokens is None, (
            f"v4 scanner tokenized what the v3 scanner rejected: {text!r}"
        )
        assert current.error is not None
        assert str(current.error) == str(frozen.error), text
        assert (current.error.line, current.error.column) == (
            frozen.error.line,
            frozen.error.column,
        ), text
        assert current.fingerprint is None, text
    else:
        assert current.error is None, (
            f"v4 scanner rejected what the v3 scanner accepted: {text!r} "
            f"({current.error})"
        )
        assert current.tokens == frozen.tokens, text
        if frozen.fingerprint is None:
            assert current.fingerprint is None, text
        else:
            assert current.fingerprint is not None, text
            assert current.fingerprint.key == frozen.fingerprint.key, text
            assert (
                current.fingerprint.constants == frozen.fingerprint.constants
            ), text
            assert current.fingerprint.spans == frozen.fingerprint.spans, text


class TestV3ScannerDifferential:
    """The v4 dispatch loop vs the frozen v3 alternation, whole-Scan."""

    @given(arbitrary_text)
    @settings(max_examples=400, deadline=None)
    def test_arbitrary_text_matches_frozen_v3_scanner(self, text):
        assert_same_scan_as_v3(text)

    @given(sql_ish_text)
    @settings(max_examples=400, deadline=None)
    def test_sql_shaped_text_matches_frozen_v3_scanner(self, text):
        assert_same_scan_as_v3(text)

    @pytest.mark.parametrize("text", EDGE_CASES)
    def test_edge_corpus_matches_frozen_v3_scanner(self, text):
        assert_same_scan_as_v3(text)


class TestLegacyEscapeHatch:
    """``REPRO_LEGACY_LEXER=1`` is gone: the v4 façade warns that the
    legacy path was removed and proceeds with the scanner."""

    def test_forwarding_default_is_scanner(self):
        import warnings

        from repro.sqlparser import lexer

        assert lexer._USE_LEGACY is False
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tokens = lexer.tokenize("SELECT a FROM t")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "a", "FROM", "t"]

    def test_escape_hatch_warns_removed_and_proceeds(self, monkeypatch):
        from repro.sqlparser import lexer

        monkeypatch.setattr(lexer, "_USE_LEGACY", True)
        with pytest.warns(DeprecationWarning, match="was removed"):
            tokens = lexer.tokenize("SELECT a FROM t WHERE x = 1")
        assert tokens == scan("SELECT a FROM t WHERE x = 1").tokens

    def test_lexer_module_keeps_compat_surface(self):
        from repro.sqlparser import lexer

        assert lexer.fingerprint_statement("SELECT 1") is not None
        assert lexer.StatementFingerprint is not None
        assert not hasattr(lexer, "Lexer")
