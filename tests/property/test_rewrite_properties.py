"""Property-based tests: rewrite equivalence on randomized databases.

For randomly generated tables and randomly chosen stifle runs, the solved
statement must return the same information as the original run — checked
by executing both on the engine (the guarantee the paper argues for, made
mechanical)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.antipatterns import DetectionContext, run_detectors
from repro.engine import Column, Database, TableSchema
from repro.log import LogRecord, QueryLog
from repro.patterns import build_blocks
from repro.pipeline import parse_log
from repro.rewrite import solve
from repro.rewrite.validation import validate_solved

COLUMNS = ("alpha", "beta", "gamma")


@st.composite
def databases(draw):
    """A one-table database with integer keys 0..n and random values."""
    row_count = draw(st.integers(min_value=0, max_value=12))
    database = Database()
    database.create_table(
        TableSchema(
            "items",
            (Column("id", "bigint", is_key=True),)
            + tuple(Column(c, "int") for c in COLUMNS),
        ),
        [
            {
                "id": i,
                **{
                    c: draw(
                        st.one_of(st.none(), st.integers(0, 5))
                    )
                    for c in COLUMNS
                },
            }
            for i in range(row_count)
        ],
    )
    return database


key_choices = st.lists(
    st.integers(min_value=0, max_value=15), min_size=2, max_size=6
)
column_subsets = st.lists(
    st.sampled_from(COLUMNS), min_size=1, max_size=3, unique=True
)


def run_and_validate(database, statements):
    log = QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=i * 0.1, user="u")
        for i, sql in enumerate(statements)
    )
    stage = parse_log(log)
    instances = run_detectors(
        build_blocks(stage.queries),
        DetectionContext(key_columns=frozenset({"id"})),
    )
    result = solve(stage.parsed_log, instances)
    return [validate_solved(database, solved) for solved in result.solved]


class TestDwEquivalence:
    @given(databases(), key_choices, column_subsets)
    @settings(max_examples=100, deadline=None)
    def test_dw_rewrite_equivalent(self, database, keys, columns):
        projection = ", ".join(columns)
        statements = [
            f"SELECT {projection} FROM items WHERE id = {key}" for key in keys
        ]
        reports = run_and_validate(database, statements)
        for report in reports:
            if report.comparable:
                assert report.equivalent, report.reason


class TestDsEquivalence:
    @given(databases(), st.integers(0, 15))
    @settings(max_examples=100, deadline=None)
    def test_ds_rewrite_equivalent(self, database, key):
        statements = [
            f"SELECT alpha FROM items WHERE id = {key}",
            f"SELECT beta, gamma FROM items WHERE id = {key}",
        ]
        reports = run_and_validate(database, statements)
        for report in reports:
            if report.comparable:
                assert report.equivalent, report.reason


class TestSncSafety:
    @given(databases(), st.sampled_from(COLUMNS))
    @settings(max_examples=50, deadline=None)
    def test_snc_original_always_empty(self, database, column):
        statements = [f"SELECT id FROM items WHERE {column} = NULL"]
        reports = run_and_validate(database, statements)
        assert len(reports) == 1
        assert reports[0].equivalent
