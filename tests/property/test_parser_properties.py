"""Property-based tests: formatter/parser round-trip over generated ASTs.

The strategy builds random (but valid) statement trees bottom-up; the
property is the core guarantee the cleaning framework rests on:

    parse(format_sql(tree)) == tree

i.e. the canonical rendering loses no structure, for *any* statement the
dialect can express.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sqlparser import ast, format_sql, parse, tokenize
from repro.sqlparser.tokens import TokenKind

# ----------------------------------------------------------------------
# AST strategies

identifiers = st.sampled_from(
    ["a", "b", "objid", "ra", "name", "rowc_g", "htmid", "x1"]
)
table_names = st.sampled_from(["t", "u", "photoprimary", "employees"])

literals = st.one_of(
    st.integers(min_value=0, max_value=10**6).map(
        lambda n: ast.Literal(str(n), "number")
    ),
    st.floats(
        min_value=0.001, max_value=10**6, allow_nan=False, allow_infinity=False
    ).map(lambda f: ast.Literal(repr(round(f, 6)), "number")),
    st.text(
        alphabet="abc XYZ_0129'", min_size=0, max_size=8
    ).map(lambda s: ast.Literal(s, "string")),
    st.just(ast.Literal("NULL", "null")),
)

columns = st.builds(
    ast.ColumnRef,
    name=identifiers,
    table=st.one_of(st.none(), st.sampled_from(["t", "p"])),
)

variables = identifiers.map(lambda n: ast.Variable(n))


def value_exprs(children):
    return st.one_of(
        literals,
        columns,
        variables,
        st.builds(
            ast.BinaryOp,
            op=st.sampled_from(["+", "-", "*", "/"]),
            left=children,
            right=children,
        ),
        st.builds(ast.UnaryOp, op=st.just("-"), operand=columns),
        st.builds(
            ast.FunctionCall,
            name=st.sampled_from(["abs", "round", "count", "isnull"]),
            args=st.lists(children, min_size=1, max_size=2).map(tuple),
        ),
        st.builds(
            ast.CaseExpression,
            whens=st.lists(
                st.builds(
                    ast.WhenClause,
                    condition=st.builds(
                        ast.Comparison, op=st.just("="), left=columns, right=literals
                    ),
                    result=children,
                ),
                min_size=1,
                max_size=2,
            ).map(tuple),
            operand=st.none(),
            else_result=st.one_of(st.none(), children),
        ),
    )


values = st.recursive(st.one_of(literals, columns), value_exprs, max_leaves=8)


def predicates(children):
    leaf = st.one_of(
        st.builds(
            ast.Comparison,
            op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
            left=values,
            right=values,
        ),
        st.builds(
            ast.InList,
            expr=columns,
            items=st.lists(literals, min_size=1, max_size=3).map(tuple),
            negated=st.booleans(),
        ),
        st.builds(
            ast.Between,
            expr=columns,
            low=literals,
            high=literals,
            negated=st.booleans(),
        ),
        st.builds(ast.IsNull, expr=columns, negated=st.booleans()),
        st.builds(
            ast.Like,
            expr=columns,
            pattern=st.text(alphabet="ab%_", min_size=1, max_size=4).map(
                lambda s: ast.Literal(s, "string")
            ),
            negated=st.booleans(),
        ),
    )
    return st.one_of(
        leaf,
        st.builds(ast.And, left=children, right=children),
        st.builds(ast.Or, left=children, right=children),
        st.builds(ast.Not, operand=children),
    )


conditions = st.recursive(
    st.builds(ast.Comparison, op=st.just("="), left=columns, right=literals),
    predicates,
    max_leaves=6,
)

select_items = st.one_of(
    st.builds(ast.SelectItem, expr=values, alias=st.one_of(st.none(), identifiers)),
    st.just(ast.SelectItem(expr=ast.Star())),
)

simple_sources = st.builds(
    ast.TableName,
    name=table_names,
    schema=st.one_of(st.none(), st.just("dbo")),
    alias=st.one_of(st.none(), st.sampled_from(["t", "p", "x"])),
)


def sources(children):
    return st.builds(
        ast.Join,
        left=children,
        right=simple_sources,
        kind=st.sampled_from(["INNER", "LEFT", "CROSS"]),
        condition=st.builds(
            ast.Comparison,
            op=st.just("="),
            left=columns,
            right=columns,
        ),
    ).map(
        lambda join: ast.Join(
            left=join.left,
            right=join.right,
            kind=join.kind,
            condition=None if join.kind == "CROSS" else join.condition,
        )
    )


from_sources = st.recursive(simple_sources, sources, max_leaves=3)

select_statements = st.builds(
    ast.SelectStatement,
    items=st.lists(select_items, min_size=1, max_size=3).map(tuple),
    from_sources=st.lists(from_sources, min_size=1, max_size=2).map(tuple),
    where=st.one_of(st.none(), conditions),
    group_by=st.just(()),
    having=st.none(),
    order_by=st.lists(
        st.builds(ast.OrderItem, expr=columns, descending=st.booleans()),
        max_size=2,
    ).map(tuple),
    distinct=st.booleans(),
    top=st.one_of(
        st.none(),
        st.builds(
            ast.TopClause,
            count=st.integers(1, 100).map(lambda n: ast.Literal(str(n), "number")),
            percent=st.booleans(),
        ),
    ),
)

statements = st.one_of(
    select_statements,
    st.builds(
        ast.Union,
        left=select_statements,
        right=select_statements,
        all=st.booleans(),
    ),
)


class TestRoundTrip:
    @given(statements)
    @settings(max_examples=300, deadline=None)
    def test_format_parse_round_trip(self, tree):
        rendered = format_sql(tree)
        reparsed = parse(rendered)
        assert reparsed == tree, rendered

    @given(statements)
    @settings(max_examples=100, deadline=None)
    def test_formatting_is_deterministic(self, tree):
        assert format_sql(tree) == format_sql(tree)

    @given(statements)
    @settings(max_examples=100, deadline=None)
    def test_rendered_sql_lexes_cleanly(self, tree):
        tokens = tokenize(format_sql(tree))
        assert tokens[-1].kind is TokenKind.EOF
