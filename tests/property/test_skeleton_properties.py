"""Property-based tests: skeleton/template invariants (Definition 6)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.skeleton import build_template, skeletonize_statement, template_fingerprint
from repro.sqlparser import ast, format_sql, parse
from repro.sqlparser.visitor import transform

numbers = st.integers(min_value=0, max_value=10**9)
strings = st.text(alphabet="abcXYZ 019", max_size=10)


def substitute_constants(tree, number_value, string_value):
    """Replace every literal with a fixed other constant of the same kind."""

    def rule(node):
        if isinstance(node, ast.Literal):
            if node.kind == "number":
                return ast.Literal(str(number_value), "number")
            if node.kind == "string":
                return ast.Literal(string_value, "string")
        return None

    return transform(tree, rule)


TEMPLATE_SAMPLES = [
    "SELECT a, b FROM t WHERE a = 0 AND b >= 3",
    "SELECT name FROM employee WHERE empid = 8",
    "SELECT count(*) FROM photoprimary WHERE htmid >= 100 AND htmid <= 200",
    "SELECT x FROM t WHERE name = 'abc' AND k IN (1, 2, 3)",
    "SELECT TOP 10 a FROM t WHERE b BETWEEN 1 AND 2 ORDER BY a DESC",
    "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z = 5)",
]


class TestSkeletonInvariance:
    @given(
        sql=st.sampled_from(TEMPLATE_SAMPLES),
        number=numbers,
        string=strings,
    )
    @settings(max_examples=200, deadline=None)
    def test_constant_substitution_preserves_template(self, sql, number, string):
        """Definition 6: queries differing only in constants are similar —
        they must map to the identical template and fingerprint."""
        original = parse(sql)
        substituted = substitute_constants(original, number, string)
        t1 = build_template(original)
        t2 = build_template(substituted)
        assert t1 == t2
        assert template_fingerprint(t1) == template_fingerprint(t2)

    @given(sql=st.sampled_from(TEMPLATE_SAMPLES))
    @settings(max_examples=50, deadline=None)
    def test_skeletonization_idempotent(self, sql):
        tree = parse(sql)
        once = skeletonize_statement(tree)
        twice = skeletonize_statement(once)
        assert once == twice

    @given(sql=st.sampled_from(TEMPLATE_SAMPLES), number=numbers)
    @settings(max_examples=100, deadline=None)
    def test_skeleton_contains_no_original_constants(self, sql, number):
        substituted = substitute_constants(parse(sql), number, "zz_secret")
        skeleton_text = format_sql(skeletonize_statement(substituted))
        assert "zz_secret" not in skeleton_text
        # the (large) substituted number must be gone too
        if number > 1000:
            assert str(number) not in skeleton_text

    @given(sql=st.sampled_from(TEMPLATE_SAMPLES))
    @settings(max_examples=50, deadline=None)
    def test_case_insensitivity(self, sql):
        assert build_template(parse(sql)) == build_template(parse(sql.upper()))
