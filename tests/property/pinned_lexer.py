"""The pinned per-character reference lexer for differential fuzzing.

This is the hand-written ``Lexer`` that shipped in
``repro.sqlparser.lexer`` through parse engines v1–v3, moved here
verbatim when parse engine v4 removed the production escape hatch
(``REPRO_LEGACY_LEXER=1`` now warns that the path is gone and proceeds
with the scanner).  It stays in-tree *unchanged* as the executable
specification of the tokenizer: the property suite fuzzes every
scanner rewrite against it, so the simplest possible implementation —
one character at a time, no tables shared with the code under test —
is exactly what makes it a trustworthy reference.

Do not optimise or refactor this module.  Its value is that it does
not change.
"""

from __future__ import annotations

from typing import List

from repro.sqlparser.errors import LexerError
from repro.sqlparser.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_#"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_WHITESPACE = frozenset(" \t\r\n\f\v")

_KEYWORD_CASES = {}
for _kw in KEYWORDS:
    for _spelling in (_kw, _kw.lower(), _kw.capitalize()):
        _KEYWORD_CASES[_spelling] = _kw

_MULTI_BY_FIRST: dict = {}
for _op in MULTI_CHAR_OPERATORS:
    _MULTI_BY_FIRST.setdefault(_op[0], []).append(_op)
_MULTI_BY_FIRST = {first: tuple(ops) for first, ops in _MULTI_BY_FIRST.items()}

_PUNCT_KINDS = {
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMICOLON,
}


class Lexer:
    """Single-use tokenizer over one SQL statement string."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Tokenize the whole input, appending a trailing EOF token."""
        tokens: List[Token] = []
        append = tokens.append
        length = len(self._text)
        while True:
            self._skip_trivia()
            if self._pos >= length:
                append(Token(TokenKind.EOF, "", self._line, self._column))
                return tokens
            append(self._next_token())

    # ------------------------------------------------------------------
    # Character helpers

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _jump(self, new_pos: int) -> None:
        """Move to ``new_pos``, updating line/column over the skipped run."""
        text = self._text
        pos = self._pos
        chunk = text[pos:new_pos]
        newlines = chunk.count("\n")
        if newlines:
            self._line += newlines
            self._column = new_pos - (pos + chunk.rfind("\n"))
        else:
            self._column += new_pos - pos
        self._pos = new_pos

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (both styles)."""
        text = self._text
        length = len(text)
        while True:
            pos = self._pos
            if pos >= length:
                return
            char = text[pos]
            if char in _WHITESPACE:
                end = pos + 1
                while end < length and text[end] in _WHITESPACE:
                    end += 1
                self._jump(end)
            elif char == "-" and text.startswith("--", pos):
                end = text.find("\n", pos)
                self._jump(length if end == -1 else end)
            elif char == "/" and text.startswith("/*", pos):
                end = text.find("*/", pos + 2)
                if end == -1:
                    raise LexerError(
                        "unterminated block comment", self._line, self._column
                    )
                self._jump(end + 2)
            else:
                return

    # ------------------------------------------------------------------
    # Token producers

    def _next_token(self) -> Token:
        text = self._text
        pos = self._pos
        char = text[pos]
        line, column = self._line, self._column

        if char in _IDENT_START:
            length = len(text)
            end = pos + 1
            while end < length and text[end] in _IDENT_CONT:
                end += 1
            word = text[pos:end]
            self._column += end - pos
            self._pos = end
            keyword = _KEYWORD_CASES.get(word)
            if keyword is not None:
                return Token(TokenKind.KEYWORD, keyword, line, column)
            upper = word.upper()
            if upper in KEYWORDS:
                return Token(TokenKind.KEYWORD, upper, line, column)
            return Token(TokenKind.IDENTIFIER, word, line, column)
        if char in _DIGITS or (char == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column)
        if char == "'":
            return self._lex_string(line, column)
        if char == "[":
            return self._lex_bracket_identifier(line, column)
        if char == '"':
            return self._lex_quoted_identifier(line, column)
        if char == "@":
            return self._lex_variable(line, column)

        punct = _PUNCT_KINDS.get(char)
        if punct is not None:
            self._pos = pos + 1
            self._column += 1
            return Token(punct, char, line, column)

        multi = _MULTI_BY_FIRST.get(char)
        if multi is not None:
            for operator in multi:
                if text.startswith(operator, pos):
                    self._pos = pos + len(operator)
                    self._column += len(operator)
                    return Token(TokenKind.OPERATOR, operator, line, column)
        if char in SINGLE_CHAR_OPERATORS:
            self._pos = pos + 1
            self._column += 1
            return Token(TokenKind.OPERATOR, char, line, column)

        raise LexerError(f"unexpected character {char!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        text = self._text
        length = len(text)
        start = pos = self._pos
        while pos < length and text[pos] in _DIGITS:
            pos += 1
        if pos < length and text[pos] == "." and not text.startswith("..", pos):
            pos += 1
            while pos < length and text[pos] in _DIGITS:
                pos += 1
        if pos < length and text[pos] in "eE":
            lookahead = pos + 1
            if lookahead < length and text[lookahead] in "+-":
                lookahead += 1
            if lookahead < length and text[lookahead] in _DIGITS:
                pos = lookahead + 1
                while pos < length and text[pos] in _DIGITS:
                    pos += 1
        value = text[start:pos]
        self._column += pos - start
        self._pos = pos
        # `1abc` is a malformed literal, not a number followed by an
        # identifier; reject it here for a clear error position.
        if pos < length and text[pos] in _IDENT_START:
            raise LexerError(
                f"malformed numeric literal {value + text[pos]!r}",
                line,
                column,
            )
        return Token(TokenKind.NUMBER, value, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        text = self._text
        length = len(text)
        pos = self._pos + 1  # past the opening quote
        pieces: List[str] = []
        while True:
            quote = text.find("'", pos)
            if quote == -1:
                raise LexerError("unterminated string literal", line, column)
            pieces.append(text[pos:quote])
            if quote + 1 < length and text[quote + 1] == "'":  # escaped quote
                pieces.append("'")
                pos = quote + 2
                continue
            self._jump(quote + 1)
            return Token(TokenKind.STRING, "".join(pieces), line, column)

    def _lex_bracket_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening bracket
        start = self._pos
        while self._pos < len(self._text) and self._peek() != "]":
            self._advance()
        if self._pos >= len(self._text):
            raise LexerError("unterminated [identifier]", line, column)
        name = self._text[start : self._pos]
        self._advance()  # closing bracket
        return Token(TokenKind.IDENTIFIER, name, line, column)

    def _lex_quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        start = self._pos
        while self._pos < len(self._text) and self._peek() != '"':
            self._advance()
        if self._pos >= len(self._text):
            raise LexerError('unterminated "identifier"', line, column)
        name = self._text[start : self._pos]
        self._advance()  # closing quote
        return Token(TokenKind.IDENTIFIER, name, line, column)

    def _lex_variable(self, line: int, column: int) -> Token:
        self._advance()  # the @ sign
        start = self._pos
        if self._peek() == "@":  # @@rowcount style system variables
            self._advance()
        if self._peek() not in _IDENT_START:
            raise LexerError("malformed variable name", line, column)
        while self._peek() in _IDENT_CONT:
            self._advance()
        return Token(
            TokenKind.VARIABLE, self._text[start : self._pos], line, column
        )
