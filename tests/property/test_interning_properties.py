"""Property-based tests: interned-int segmentation ≡ string segmentation.

The mining kernels run on dense interned ids (or block-local ids as the
fallback); the paper's definitions are stated over template *strings*.
These properties pin the equivalence: for any log, segmenting over ints
must produce exactly the runs and instances a string-based segmentation
produces, and the interned unit ids must resolve back to the string
unit.
"""

import dataclasses

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.log import LogRecord, QueryLog
from repro.patterns import MinerConfig, build_blocks, mine, segment_block
from repro.pipeline import parse_log
from repro.skeleton import TemplateInterner

statements = st.sampled_from(
    [
        "SELECT a FROM t WHERE id = 1",
        "SELECT a FROM t WHERE id = 2",  # same template as the first
        "SELECT b FROM t WHERE id = 1",
        "SELECT a, b FROM t WHERE id = 3",
        "SELECT c FROM u",
    ]
)
users = st.sampled_from(["u1", "u2", None])

log_entries = st.lists(
    st.tuples(
        statements,
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        users,
    ),
    max_size=40,
)
max_periods = st.integers(min_value=1, max_value=5)


def build_log(entries):
    return QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts, user) in enumerate(entries)
    )


def strip_interning(queries):
    """The same parsed queries as if no interner had seen them."""
    return [
        dataclasses.replace(query, interned_id=-1) for query in queries
    ]


def reference_segmentation(template_ids, max_period):
    """String-tuple greedy segmentation — the pre-interning kernel,
    kept here as the executable specification."""
    segments = []
    position = 0
    length = len(template_ids)
    while position < length:
        best_period, best_repeats, best_cover = 1, 1, 1
        remaining = length - position
        for period in range(1, min(max_period, remaining // 2) + 1):
            unit = tuple(template_ids[position : position + period])
            repeats = 1
            probe = position + period
            while (
                probe + period <= length
                and tuple(template_ids[probe : probe + period]) == unit
            ):
                repeats += 1
                probe += period
            cover = period * repeats
            if repeats >= 2 and cover > best_cover:
                best_period, best_repeats, best_cover = (
                    period,
                    repeats,
                    cover,
                )
        if best_repeats == 1:
            best_period = 1
        segments.append(
            (
                tuple(template_ids[position : position + best_period]),
                best_repeats,
            )
        )
        position += best_period * best_repeats
    return segments


class TestSegmentationEquivalence:
    @given(log_entries, max_periods)
    @settings(max_examples=150, deadline=None)
    def test_int_kernel_matches_string_reference(self, entries, max_period):
        """segment_block over interned ids reproduces the string-based
        greedy segmentation segment for segment."""
        queries = parse_log(build_log(entries)).queries
        config = MinerConfig(max_period=max_period)
        for block in build_blocks(queries, config):
            runs = segment_block(block, config)
            assert [
                (run.unit, run.repeats) for run in runs
            ] == reference_segmentation(block.template_ids(), max_period)

    @given(log_entries, max_periods)
    @settings(max_examples=150, deadline=None)
    def test_interned_and_uninterned_mining_agree(self, entries, max_period):
        """The local-ids fallback (un-interned queries) must mine the
        exact same blocks, runs and instances as the interned path —
        dataclass equality ignores the run-scoped id bookkeeping."""
        config = MinerConfig(max_period=max_period)
        queries = parse_log(build_log(entries)).queries
        interned = mine(queries, config)
        fallback = mine(strip_interning(queries), config)
        assert fallback.blocks == interned.blocks
        assert fallback.runs == interned.runs
        assert fallback.instances == interned.instances

    @given(log_entries, max_periods)
    @settings(max_examples=150, deadline=None)
    def test_unit_ids_resolve_to_unit(self, entries, max_period):
        """Each run's interned unit resolves back to its string unit
        through the run's interner; un-interned mining carries none."""
        config = MinerConfig(max_period=max_period)
        interner = TemplateInterner()
        queries = parse_log(build_log(entries), interner=interner).queries

        for run in mine(queries, config).runs:
            assert run.unit_ids is not None
            assert interner.resolve_unit(run.unit_ids) == run.unit
        for run in mine(strip_interning(queries), config).runs:
            assert run.unit_ids is None
