"""Fuzzing the SQL front end: total functions, typed failures only.

The parse stage of the pipeline feeds on *hostile* input — seven years of
web traffic includes every malformed string imaginable — and Section 5.3
requires misparses to be counted, never to crash the run.  Property: for
ANY input string, ``parse`` either returns a Statement or raises a
``SqlError``; nothing else ever escapes.
"""

import hypothesis.strategies as st
from hypothesis import example, given, settings

from repro.sqlparser import SqlError, parse, tokenize
from repro.sqlparser.ast_nodes import Statement

arbitrary_text = st.text(max_size=120)

sql_ish_text = st.lists(
    st.sampled_from(
        [
            "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "JOIN",
            "ON", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "NULL",
            "a", "b", "t", "u", "objid", "count", "*", ",", "(", ")",
            "=", "<", ">", "<>", "'x'", "1", "2.5", "@v", ".", ";",
            "--", "/*", "*/", "[", "]",
        ]
    ),
    max_size=25,
).map(" ".join)


class TestParserTotality:
    @given(arbitrary_text)
    @example("SELECT '")
    @example("SELECT /*")
    @example("\x00\x01\x02")
    @example("SELECT a FROM t WHERE ((((((((")
    @settings(max_examples=500, deadline=None)
    def test_arbitrary_input_never_crashes(self, text):
        try:
            result = parse(text)
        except SqlError:
            return
        assert isinstance(result, Statement)

    @given(sql_ish_text)
    @settings(max_examples=500, deadline=None)
    def test_sql_shaped_garbage_never_crashes(self, text):
        try:
            result = parse(text)
        except SqlError:
            return
        assert isinstance(result, Statement)

    @given(arbitrary_text)
    @settings(max_examples=300, deadline=None)
    def test_lexer_totality(self, text):
        try:
            tokens = tokenize(text)
        except SqlError:
            return
        assert tokens  # at least the EOF token


class TestPipelineTotality:
    @given(st.lists(sql_ish_text, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_pipeline_survives_garbage_logs(self, statements):
        from repro.log import QueryLog
        from repro.pipeline import CleaningPipeline

        log = QueryLog.from_statements(statements)
        result = CleaningPipeline().run(log)
        accounted = (
            len(result.parse_stage.queries)
            + len(result.parse_stage.syntax_errors)
            + len(result.parse_stage.non_select)
        )
        assert accounted == len(result.dedup.log)
