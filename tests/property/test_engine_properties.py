"""Property-based tests: relational-engine invariants.

Random small tables + random predicates; the properties are the algebraic
identities any SQL engine must satisfy — including the predicate
equivalences the Stifle rewrites rely on (``IN`` vs OR-chain, ``BETWEEN``
vs conjunction of bounds).
"""

from collections import Counter

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine import Column, Database, TableSchema

values = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))


@st.composite
def databases(draw):
    rows = draw(
        st.lists(
            st.tuples(values, values),
            min_size=0,
            max_size=15,
        )
    )
    database = Database()
    database.create_table(
        TableSchema(
            "items",
            (Column("id", "int", is_key=True), Column("a", "int"), Column("b", "int")),
        ),
        [{"id": i, "a": a, "b": b} for i, (a, b) in enumerate(rows)],
    )
    return database


constants = st.integers(min_value=-6, max_value=6)


class TestFilterInvariants:
    @given(databases(), constants)
    @settings(max_examples=150, deadline=None)
    def test_filter_returns_subset(self, db, constant):
        everything = Counter(db.execute("SELECT id, a, b FROM items").rows)
        filtered = Counter(
            db.execute(f"SELECT id, a, b FROM items WHERE a >= {constant}").rows
        )
        assert all(filtered[row] <= everything[row] for row in filtered)

    @given(databases(), constants, constants)
    @settings(max_examples=150, deadline=None)
    def test_and_is_intersection(self, db, c1, c2):
        both = set(
            db.execute(
                f"SELECT id FROM items WHERE a >= {c1} AND b >= {c2}"
            ).rows
        )
        left = set(db.execute(f"SELECT id FROM items WHERE a >= {c1}").rows)
        right = set(db.execute(f"SELECT id FROM items WHERE b >= {c2}").rows)
        assert both == left & right

    @given(databases(), constants, constants)
    @settings(max_examples=150, deadline=None)
    def test_or_is_union(self, db, c1, c2):
        either = set(
            db.execute(f"SELECT id FROM items WHERE a = {c1} OR b = {c2}").rows
        )
        left = set(db.execute(f"SELECT id FROM items WHERE a = {c1}").rows)
        right = set(db.execute(f"SELECT id FROM items WHERE b = {c2}").rows)
        assert either == left | right

    @given(databases(), st.lists(constants, min_size=1, max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_in_list_equals_or_chain(self, db, in_values):
        """The identity the DW-Stifle rewrite rests on."""
        in_sql = ", ".join(str(v) for v in in_values)
        or_sql = " OR ".join(f"a = {v}" for v in in_values)
        via_in = sorted(
            db.execute(f"SELECT id FROM items WHERE a IN ({in_sql})").rows
        )
        via_or = sorted(db.execute(f"SELECT id FROM items WHERE {or_sql}").rows)
        assert via_in == via_or

    @given(databases(), constants, constants)
    @settings(max_examples=150, deadline=None)
    def test_between_equals_bound_pair(self, db, low, high):
        low, high = min(low, high), max(low, high)
        via_between = sorted(
            db.execute(
                f"SELECT id FROM items WHERE a BETWEEN {low} AND {high}"
            ).rows
        )
        via_bounds = sorted(
            db.execute(
                f"SELECT id FROM items WHERE a >= {low} AND a <= {high}"
            ).rows
        )
        assert via_between == via_bounds

    @given(databases(), constants)
    @settings(max_examples=100, deadline=None)
    def test_null_comparisons_never_match(self, db, constant):
        """The semantics behind the SNC antipattern."""
        assert db.execute("SELECT id FROM items WHERE a = NULL").rows == []
        matched = db.execute(f"SELECT id FROM items WHERE a = {constant}").rows
        nulls = db.execute("SELECT id FROM items WHERE a IS NULL").rows
        assert not (set(matched) & set(nulls))


class TestShapeInvariants:
    @given(databases())
    @settings(max_examples=100, deadline=None)
    def test_count_star_matches_row_count(self, db):
        count = db.execute("SELECT count(*) FROM items").rows[0][0]
        assert count == len(db.execute("SELECT * FROM items").rows)

    @given(databases())
    @settings(max_examples=100, deadline=None)
    def test_distinct_is_set_of_projection(self, db):
        plain = db.execute("SELECT a FROM items").rows
        distinct = db.execute("SELECT DISTINCT a FROM items").rows
        assert set(distinct) == set(plain)
        assert len(distinct) == len(set(plain))

    @given(databases(), st.integers(0, 20))
    @settings(max_examples=100, deadline=None)
    def test_top_bounds_cardinality(self, db, limit):
        total = len(db.execute("SELECT id FROM items").rows)
        rows = db.execute(f"SELECT TOP {limit} id FROM items").rows
        assert len(rows) == min(limit, total)

    @given(databases())
    @settings(max_examples=100, deadline=None)
    def test_order_by_is_permutation(self, db):
        plain = Counter(db.execute("SELECT id FROM items").rows)
        ordered = Counter(db.execute("SELECT id FROM items ORDER BY a DESC").rows)
        assert plain == ordered

    @given(databases())
    @settings(max_examples=100, deadline=None)
    def test_group_by_partitions_rows(self, db):
        groups = db.execute(
            "SELECT a, count(*) FROM items GROUP BY a"
        ).rows
        assert sum(count for _, count in groups) == len(
            db.execute("SELECT id FROM items").rows
        )

    @given(databases())
    @settings(max_examples=100, deadline=None)
    def test_self_join_on_key_is_identity(self, db):
        joined = db.execute(
            "SELECT x.id FROM items x JOIN items y ON x.id = y.id"
        ).rows
        plain = db.execute("SELECT id FROM items").rows
        assert sorted(joined) == sorted(plain)
