"""Property-based tests: the overlap measure's metric-style axioms."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import Interval, Region, interval_overlap, region_overlap

bounds = st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False)


@st.composite
def intervals(draw):
    a = draw(bounds)
    b = draw(bounds)
    return Interval(min(a, b), max(a, b))


table_sets = st.sets(
    st.sampled_from(["t", "u", "photoprimary", "specobjall"]), min_size=1, max_size=3
).map(frozenset)

columns = st.sampled_from(["objid", "ra", "htmid", "z"])


@st.composite
def regions(draw):
    numeric = draw(
        st.dictionaries(columns, intervals(), max_size=2)
    )
    points = draw(
        st.dictionaries(
            st.sampled_from(["pid", "kid"]),
            st.sets(
                st.integers(0, 50).map(float), min_size=1, max_size=4
            ).map(frozenset),
            max_size=1,
        )
    )
    categorical = draw(
        st.dictionaries(
            st.sampled_from(["name", "type"]),
            st.sets(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=2).map(
                frozenset
            ),
            max_size=1,
        )
    )
    return Region(
        tables=draw(table_sets),
        numeric=tuple(sorted(numeric.items())),
        points=tuple(sorted(points.items())),
        categorical=tuple(sorted(categorical.items())),
    )


class TestOverlapAxioms:
    @given(regions())
    @settings(max_examples=200, deadline=None)
    def test_identity(self, region):
        assert region_overlap(region, region) == 1.0

    @given(regions(), regions())
    @settings(max_examples=300, deadline=None)
    def test_symmetry(self, first, second):
        forward = region_overlap(first, second)
        backward = region_overlap(second, first)
        assert abs(forward - backward) < 1e-12

    @given(regions(), regions())
    @settings(max_examples=300, deadline=None)
    def test_bounded(self, first, second):
        value = region_overlap(first, second)
        assert 0.0 <= value <= 1.0

    @given(regions(), regions(), st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_unshared_factor_monotone(self, first, second, factor):
        """A larger unshared-dimension factor never lowers the overlap."""
        loose = region_overlap(first, second, unshared_factor=factor)
        strict = region_overlap(first, second, unshared_factor=0.0)
        assert loose >= strict - 1e-12


class TestIntervalOverlapAxioms:
    @given(intervals())
    @settings(max_examples=100, deadline=None)
    def test_self_overlap_is_one(self, interval):
        assert interval_overlap(interval, interval) == 1.0

    @given(intervals(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_symmetry_and_bounds(self, a, b):
        forward = interval_overlap(a, b)
        assert forward == interval_overlap(b, a)
        assert 0.0 <= forward <= 1.0

    @given(intervals(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_disjoint_implies_zero(self, a, b):
        if a.intersect(b) is None:
            assert interval_overlap(a, b) == 0.0

    @given(intervals(), intervals())
    @settings(max_examples=200, deadline=None)
    def test_positive_implies_intersecting(self, a, b):
        if interval_overlap(a, b) > 0.0:
            assert a.intersect(b) is not None
