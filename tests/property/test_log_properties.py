"""Property-based tests: dedup and mining invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.antipatterns import minimal_period
from repro.log import LogRecord, QueryLog, delete_duplicates
from repro.log.dedup import normalize_statement_text
from repro.patterns import MinerConfig, mine
from repro.pipeline import parse_log

statements = st.sampled_from(
    [
        "SELECT a FROM t WHERE id = 1",
        "SELECT a FROM t WHERE id = 2",
        "SELECT b FROM t WHERE id = 1",
        "SELECT c FROM u",
    ]
)
users = st.sampled_from(["u1", "u2", None])

log_entries = st.lists(
    st.tuples(
        statements,
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        users,
    ),
    max_size=40,
)
thresholds = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def build_log(entries):
    return QueryLog(
        LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
        for i, (sql, ts, user) in enumerate(entries)
    )


class TestDedupProperties:
    @given(log_entries, thresholds)
    @settings(max_examples=200, deadline=None)
    def test_dedup_is_idempotent(self, entries, threshold):
        log = build_log(entries)
        once = delete_duplicates(log, threshold)
        twice = delete_duplicates(once.log, threshold)
        assert twice.removed == 0
        assert twice.log == once.log

    @given(log_entries, thresholds)
    @settings(max_examples=200, deadline=None)
    def test_kept_is_subsequence_of_original(self, entries, threshold):
        log = build_log(entries)
        result = delete_duplicates(log, threshold)
        original_seqs = [record.seq for record in log]
        kept_seqs = [record.seq for record in result.log]
        iterator = iter(original_seqs)
        assert all(seq in iterator for seq in kept_seqs)  # subsequence

    @given(log_entries, thresholds)
    @settings(max_examples=200, deadline=None)
    def test_no_kept_duplicates_within_threshold(self, entries, threshold):
        log = build_log(entries)
        result = delete_duplicates(log, threshold)
        last = {}
        for record in result.log:
            key = (record.user_key(), normalize_statement_text(record.sql))
            previous = last.get(key)
            if previous is not None:
                assert record.timestamp - previous > threshold
            last[key] = record.timestamp

    @given(log_entries, thresholds)
    @settings(max_examples=100, deadline=None)
    def test_counts_add_up(self, entries, threshold):
        log = build_log(entries)
        result = delete_duplicates(log, threshold)
        assert result.kept + result.removed == len(log)

    @given(log_entries, thresholds, st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_input_order_is_irrelevant(self, entries, threshold, rng):
        # delete_duplicates must sort by timestamp itself: feeding the
        # records shuffled (as raw iterables bypass QueryLog's sort)
        # must remove exactly the same duplicates
        records = [
            LogRecord(seq=i, sql=sql, timestamp=ts, user=user)
            for i, (sql, ts, user) in enumerate(entries)
        ]
        shuffled = list(records)
        rng.shuffle(shuffled)
        ordered = delete_duplicates(QueryLog(records), threshold)
        unordered = delete_duplicates(shuffled, threshold)
        assert unordered.log == ordered.log
        assert unordered.removed == ordered.removed

    def test_out_of_order_burst_regression(self):
        # the exact shape that used to under-remove: a sub-threshold
        # burst delivered newest-first slipped past the sliding window
        records = [
            LogRecord(seq=i, sql="SELECT a FROM t WHERE id = 1",
                      timestamp=ts, user="u1")
            for i, ts in enumerate([2.0, 1.0, 0.0])
        ]
        result = delete_duplicates(records, threshold=1.0)
        assert result.removed == 2
        assert [r.timestamp for r in result.log] == [0.0]


class TestMinerProperties:
    @given(log_entries)
    @settings(max_examples=100, deadline=None)
    def test_instances_partition_parsed_queries(self, entries):
        queries = parse_log(build_log(entries)).queries
        result = mine(queries)
        covered = sorted(
            query.record.seq
            for instance in result.instances
            for query in instance.queries
        )
        assert covered == sorted(q.record.seq for q in queries)

    @given(log_entries)
    @settings(max_examples=100, deadline=None)
    def test_instances_are_time_ordered_within(self, entries):
        queries = parse_log(build_log(entries)).queries
        for instance in mine(queries).instances:
            times = [q.timestamp for q in instance.queries]
            assert times == sorted(times)

    @given(log_entries)
    @settings(max_examples=100, deadline=None)
    def test_instances_are_single_user(self, entries):
        queries = parse_log(build_log(entries)).queries
        for instance in mine(queries).instances:
            assert len({q.user for q in instance.queries}) == 1


class TestMinimalPeriodProperties:
    units = st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=4)

    @given(unit=units, repeats=st.integers(1, 5))
    @settings(max_examples=200, deadline=None)
    def test_period_reconstructs_sequence(self, unit, repeats):
        sequence = unit * repeats
        period = minimal_period(sequence)
        assert len(sequence) % len(period) == 0
        times = len(sequence) // len(period)
        assert list(period) * times == sequence

    @given(unit=units, repeats=st.integers(1, 5))
    @settings(max_examples=200, deadline=None)
    def test_period_is_no_longer_than_unit(self, unit, repeats):
        period = minimal_period(unit * repeats)
        assert len(period) <= len(unit)
