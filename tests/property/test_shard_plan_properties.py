"""Property-based tests: shard-plan and shard-codec invariants.

The parallel data plane rests on two contracts this suite fuzzes:

* :func:`repro.pipeline.parallel.shard_records` produces a true
  **partition** — every record lands in exactly one shard, a user's
  records never split across shards, and changing the worker count or
  chunk size only repacks whole users, never divides one;
* :func:`repro.store.columnar.encode_shard` /
  :func:`~repro.store.columnar.decode_shard` **round-trip** arbitrary
  records — including the verbatim-fallback statements the template
  codec cannot compress and the invalid rows (``sql=None``, integer
  SQL, ``NaN`` timestamps) that must reach a worker's validate stage
  unmangled to be quarantined there.
"""

from __future__ import annotations

import math
from collections import Counter

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.log import LogRecord
from repro.pipeline.parallel import shard_records
from repro.store.columnar import decode_shard, encode_shard, shard_record_count

# ----------------------------------------------------------------------
# Strategies

#: A small user pool so shards genuinely share users, plus anonymous.
users = st.sampled_from(
    ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", None]
)

#: Statement texts spanning the codec's regimes: templatable SELECTs
#: (constants fold into the template dictionary), quote-heavy literals,
#: statements with the codec's marker byte, and arbitrary text that
#: falls back to verbatim storage.
sql_texts = st.one_of(
    st.sampled_from(
        [
            "SELECT a FROM t WHERE id = 1",
            "SELECT a FROM t WHERE id = 42 AND x = 'lit''eral'",
            "SELECT name FROM Employee WHERE empId = 7",
            "select * from objects where ra between 1.5 and 2.5",
            "not sql at all",
            "",
            "SELECT '\x00' FROM t",  # the interleave marker byte itself
        ]
    ),
    st.text(max_size=60),
)

timestamps = st.floats(allow_nan=True, allow_infinity=True, width=64)

optional_text = st.one_of(st.none(), st.text(max_size=12))

#: Canonical-shaped records (what real log sources produce).
canonical_records = st.builds(
    LogRecord,
    seq=st.integers(min_value=-(2**63), max_value=2**63 - 1),
    sql=sql_texts,
    timestamp=timestamps,
    user=users,
    ip=optional_text,
    session=optional_text,
    rows=st.one_of(
        st.none(), st.integers(min_value=-(2**63), max_value=2**63 - 1)
    ),
)

#: Malformed records of the kinds the validate stage quarantines — the
#: codec must carry them to the worker byte-for-byte, not normalise
#: them away.  Also out-of-range integers that cannot ride the int64
#: columns.
oddball_records = st.builds(
    LogRecord,
    seq=st.one_of(st.integers(), st.floats(allow_nan=False)),
    sql=st.one_of(st.none(), st.integers(), st.binary(max_size=8)),
    timestamp=st.one_of(st.integers(), timestamps, st.none()),
    user=users,
    ip=optional_text,
    session=optional_text,
    rows=st.one_of(st.none(), st.integers()),
)

mixed_records = st.lists(
    st.one_of(canonical_records, oddball_records), max_size=60
)


def same_record(a, b):
    """Field equality with NaN-aware timestamps and type strictness."""
    for name in ("seq", "sql", "user", "ip", "session", "rows"):
        va, vb = getattr(a, name), getattr(b, name)
        if type(va) is not type(vb) or va != vb:
            return False
    ta, tb = a.timestamp, b.timestamp
    if type(ta) is not type(tb):
        return False
    if isinstance(ta, float) and math.isnan(ta):
        return isinstance(tb, float) and math.isnan(tb)
    return ta == tb


# ----------------------------------------------------------------------
# Shard plan: a true partition


class TestShardPlanIsPartition:
    @given(
        records=st.lists(canonical_records, max_size=120),
        workers=st.integers(min_value=1, max_value=8),
        chunk_size=st.sampled_from([0, 1, 7, 40, 5000]),
    )
    @settings(max_examples=150, deadline=None)
    def test_every_record_lands_in_exactly_one_shard(
        self, records, workers, chunk_size
    ):
        shards = shard_records(records, workers, chunk_size)
        flat = [record for shard in shards for record in shard]
        # identity-level multiset equality: nothing lost, nothing
        # duplicated, nothing invented
        assert Counter(map(id, flat)) == Counter(map(id, records))
        assert all(shard for shard in shards), "empty shard emitted"

    @given(
        records=st.lists(canonical_records, max_size=120),
        workers=st.integers(min_value=1, max_value=8),
        chunk_size=st.sampled_from([0, 1, 7, 40]),
    )
    @settings(max_examples=150, deadline=None)
    def test_a_user_never_splits_across_shards(
        self, records, workers, chunk_size
    ):
        shards = shard_records(records, workers, chunk_size)
        placement = {}
        for index, shard in enumerate(shards):
            for record in shard:
                placement.setdefault(record.user_key(), set()).add(index)
        assert all(len(indices) == 1 for indices in placement.values())

    @given(
        records=st.lists(canonical_records, max_size=100),
        first=st.integers(min_value=1, max_value=8),
        second=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_user_grouping_is_stable_across_shard_counts(
        self, records, first, second
    ):
        """Changing the fan-out only repacks whole users: the multiset
        of records each user contributes is identical under any plan."""

        def records_by_user(shards):
            grouped = {}
            for shard in shards:
                for record in shard:
                    grouped.setdefault(record.user_key(), []).append(
                        record.seq
                    )
            return {user: sorted(seqs) for user, seqs in grouped.items()}

        plan_a = records_by_user(shard_records(records, first, 0))
        plan_b = records_by_user(shard_records(records, second, 0))
        assert plan_a == plan_b

    @given(
        records=st.lists(canonical_records, max_size=100),
        workers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_plan_is_deterministic(self, records, workers):
        again = [
            [record.seq for record in shard]
            for shard in shard_records(records, workers, 0)
        ]
        first = [
            [record.seq for record in shard]
            for shard in shard_records(records, workers, 0)
        ]
        assert first == again


# ----------------------------------------------------------------------
# Shard codec: lossless round trip


class TestShardCodecRoundTrip:
    @given(records=mixed_records)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_preserves_every_record(self, records):
        buffer = encode_shard(records)
        assert shard_record_count(buffer) == len(records)
        decoded = list(decode_shard(buffer))
        assert len(decoded) == len(records)
        for original, restored in zip(records, decoded):
            assert same_record(original, restored), (original, restored)

    @given(records=mixed_records)
    @settings(max_examples=50, deadline=None)
    def test_decode_accepts_memoryview(self, records):
        buffer = encode_shard(records)
        decoded = list(decode_shard(memoryview(buffer)))
        assert len(decoded) == len(records)
        for original, restored in zip(records, decoded):
            assert same_record(original, restored)

    @given(records=st.lists(canonical_records, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_deterministic(self, records):
        assert encode_shard(records) == encode_shard(records)
