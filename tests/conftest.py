"""Shared fixtures: synthetic database, workload, pipeline configs."""

from __future__ import annotations

import os

import pytest

from repro.antipatterns import DetectionContext
from repro.engine import Column, Database, TableSchema
from repro.patterns import SwsConfig
from repro.pipeline import PipelineConfig
from repro.workload import WorkloadConfig, build_database, generate, skyserver_catalog

try:
    from hypothesis import settings

    settings.register_profile("ci", derandomize=True, deadline=None)
    if os.environ.get("HYPOTHESIS_PROFILE"):
        settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the pinned golden files under tests/golden/ instead "
        "of comparing against them",
    )


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def sky_database():
    """A small populated synthetic SkyServer database."""
    return build_database(object_count=800, seed=1234)


@pytest.fixture(scope="session")
def sky_keys():
    """Key-attribute names of the SkyServer schema."""
    return frozenset(skyserver_catalog().key_column_names())


@pytest.fixture()
def detection_context(sky_keys):
    return DetectionContext(key_columns=sky_keys)


@pytest.fixture()
def pipeline_config(sky_keys):
    return PipelineConfig(
        detection=DetectionContext(key_columns=sky_keys),
        sws=SwsConfig(),
    )


@pytest.fixture(scope="session")
def small_workload():
    """A deterministic small synthetic log with ground truth."""
    return generate(WorkloadConfig(seed=99, scale=0.12))


@pytest.fixture(scope="session")
def executable_workload(sky_database):
    """A workload whose constants come from ``sky_database`` — every
    generated SELECT is executable against it."""
    return generate(
        WorkloadConfig(seed=5, scale=0.05), database=sky_database
    )


@pytest.fixture()
def employees_database():
    """The paper's running-example schema (Table 1), populated."""
    database = Database()
    database.create_table(
        TableSchema(
            "Employees",
            (
                Column("empId", "bigint", is_key=True),
                Column("id", "bigint", is_key=True),
                Column("name"),
                Column("surname"),
                Column("department"),
                Column("birthday"),
                Column("phone"),
            ),
        ),
        [
            {
                "empId": 12,
                "id": 12,
                "name": "John",
                "surname": "Doe",
                "department": "sales",
                "birthday": "12.03.1985",
                "phone": "01259863448",
            },
            {
                "empId": 15,
                "id": 15,
                "name": "Mary",
                "surname": "Major",
                "department": "sales",
                "birthday": "01.01.1990",
                "phone": "123",
            },
            {
                "empId": 16,
                "id": 16,
                "name": "Ann",
                "surname": "Lee",
                "department": "hr",
                "birthday": "02.02.1992",
                "phone": "456",
            },
        ],
    )
    database.create_table(
        TableSchema(
            "Orders",
            (
                Column("orderId", "bigint", is_key=True),
                Column("empId", "bigint", is_key=True),
                Column("orders", "int"),
            ),
        ),
        [
            {"orderId": i, "empId": 12 if i % 2 else 15, "orders": i}
            for i in range(1, 11)
        ],
    )
    return database
