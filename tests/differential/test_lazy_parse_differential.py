"""Differential suite: the lazy parse fast path tells the same story.

``lazy_parse`` changes *when* SQL text and ASTs materialise, and
nothing else.  For a generated workload this suite pins every executor
configuration's lazy run to its own eager run: identical clean
records, an equal ``comparable()`` ledger counter for counter, and
zero conservation violations — plus the lazy-specific accounting laws
(``parse_lazy_hits + parse_eager == parse.records_out``, eager runs
booking zero lazy hits).
"""

from __future__ import annotations

import pytest

import repro
from repro.antipatterns import DetectionContext
from repro.pipeline import ExecutionConfig, PipelineConfig
from repro.workload import WorkloadConfig, generate, skyserver_catalog

KEYS = frozenset(skyserver_catalog().key_column_names())

EXECUTIONS = {
    "batch": ExecutionConfig(mode="batch"),
    "streaming": ExecutionConfig(mode="streaming"),
    "parallel-1": ExecutionConfig(mode="parallel", workers=1, chunk_size=0),
    "parallel-2": ExecutionConfig(mode="parallel", workers=2, chunk_size=0),
}


@pytest.fixture(scope="module")
def workload_log():
    return generate(WorkloadConfig(seed=2018, scale=0.05)).log


def _config():
    return PipelineConfig(detection=DetectionContext(key_columns=KEYS))


class TestLazyParseMatrix:
    @pytest.mark.parametrize("name", sorted(EXECUTIONS))
    def test_lazy_matches_eager(self, name, workload_log):
        execution = EXECUTIONS[name]
        lazy = repro.clean(workload_log, _config(), execution=execution)
        eager = repro.clean(
            workload_log, _config(), execution=execution, lazy_parse=False
        )
        assert lazy.clean_log.records() == eager.clean_log.records()
        assert lazy.metrics.comparable() == eager.metrics.comparable()
        assert lazy.metrics.conservation_violations() == []
        assert eager.metrics.conservation_violations() == []

        lazy_parse = lazy.metrics.stages["parse"].counters
        eager_parse = eager.metrics.stages["parse"].counters
        # The ledger law, by hand (the conservation check above already
        # enforces it, but pin the counters exist and carry traffic).
        assert (
            lazy_parse["parse_lazy_hits"] + lazy_parse["parse_eager"]
            == lazy_parse["records_out"]
        )
        assert lazy_parse["parse_lazy_hits"] > 0, (
            "a repetitive workload must take the lazy path"
        )
        assert eager_parse["parse_lazy_hits"] == 0
        assert eager_parse["parse_materialised"] == 0
        # Materialisation is bounded by emission.
        assert (
            lazy_parse["parse_materialised"] <= lazy_parse["parse_lazy_hits"]
        )

    def test_lazy_parse_off_without_cache_is_harmless(self, workload_log):
        """``lazy_parse`` is moot when the cache is off — the run takes
        the classic exact-dict path and books zero lazy traffic."""
        result = repro.clean(
            workload_log, _config(), parse_cache=False
        )
        reference = repro.clean(
            workload_log, _config(), parse_cache=False, lazy_parse=False
        )
        assert result.clean_log.records() == reference.clean_log.records()
        counters = result.metrics.stages["parse"].counters
        assert counters["parse_lazy_hits"] == 0
        assert counters["parse_cache_hits"] == 0

    def test_cli_knob_reaches_the_run(self, workload_log, tmp_path):
        """--no-lazy-parse flows through to the execution config."""
        from repro.cli.main import main
        from repro.log.io import write_csv

        source = tmp_path / "log.csv"
        write_csv(workload_log, source)
        out = tmp_path / "clean.csv"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "clean",
                str(source),
                "--output",
                str(out),
                "--metrics-json",
                str(metrics),
                "--no-lazy-parse",
            ]
        )
        assert code == 0
        import json

        ledger = json.loads(metrics.read_text())
        parse = ledger["stages"]["parse"]["counters"]
        assert parse["parse_lazy_hits"] == 0
        assert parse["parse_cache_hits"] > 0
