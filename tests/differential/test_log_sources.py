"""Differential test: every LogSource is executor-transparent.

The api_redesign contract extends the executor differential to the
*input* axis: cleaning the same log through an :class:`InMemorySource`,
:class:`CsvSource`, :class:`JsonlSource` or :class:`ColumnarSource` must
produce the same clean records and the same comparable ledger as the
classic in-RAM ``repro.clean(QueryLog)`` — on batch, streaming and
parallel (1/2/4 workers) alike.  Chunking is deliberately misaligned
with the parallel chunk size, the streaming block bound and the store's
own chunk size, so any chunk-boundary leak (a block closed early, a
dedup window reset, a shard split mid-user) breaks equality here.
"""

import pytest

import repro
from repro.log import write_csv, write_jsonl
from repro.store import (
    ColumnarSource,
    CsvSource,
    InMemorySource,
    JsonlSource,
    write_columnar,
)

from test_executor_metrics import EXECUTIONS, WORKLOADS, config, workload_log

#: Records per chunk for the file sources — deliberately not a divisor
#: of the parallel chunk_size (200) nor of the store chunking below.
SOURCE_CHUNK_RECORDS = 97

#: The columnar stores are written with yet another chunk size.
STORE_CHUNK_RECORDS = 130


@pytest.fixture(scope="module")
def source_fixtures(tmp_path_factory):
    """Per-workload on-disk copies in every format."""
    base = tmp_path_factory.mktemp("log-sources")
    fixtures = {}
    for name in sorted(WORKLOADS):
        log = workload_log(name)
        root = base / name
        root.mkdir()
        write_csv(log, root / "log.csv")
        write_jsonl(log, root / "log.jsonl")
        write_columnar(
            log, root / "log.columnar", chunk_records=STORE_CHUNK_RECORDS
        )
        fixtures[name] = root
    return fixtures


def open_sources(log, root):
    return {
        "inmemory": InMemorySource(log, chunk_records=SOURCE_CHUNK_RECORDS),
        "csv": CsvSource(root / "log.csv", chunk_records=SOURCE_CHUNK_RECORDS),
        "jsonl": JsonlSource(
            root / "log.jsonl", chunk_records=SOURCE_CHUNK_RECORDS
        ),
        "columnar": ColumnarSource(root / "log.columnar"),
    }


class TestSourceExecutorMatrix:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_source_matches_in_ram_batch(self, name, source_fixtures):
        log = workload_log(name)
        reference = repro.clean(log, config())
        ref_records = reference.clean_log.records()
        ref_ledger = reference.metrics.comparable()
        for source_name, source in open_sources(log, source_fixtures[name]).items():
            for exec_name, execution in EXECUTIONS:
                result = repro.clean(source, config(), execution=execution)
                label = f"{source_name}/{exec_name}"
                assert result.clean_log.records() == ref_records, label
                assert result.metrics.comparable() == ref_ledger, label
                assert result.metrics.conservation_violations() == [], label

    def test_path_input_equals_source_input(self, source_fixtures):
        name = sorted(WORKLOADS)[0]
        log = workload_log(name)
        root = source_fixtures[name]
        reference = repro.clean(log, config())
        for path in (root / "log.csv", root / "log.jsonl", root / "log.columnar"):
            for exec_name, execution in EXECUTIONS:
                result = repro.clean(str(path), config(), execution=execution)
                label = f"{path.name}/{exec_name}"
                assert (
                    result.clean_log.records()
                    == reference.clean_log.records()
                ), label
                assert (
                    result.metrics.comparable() == reference.metrics.comparable()
                ), label

    def test_chunk_size_is_invisible(self, source_fixtures):
        """Different source chunkings of the same log tell one story."""
        name = sorted(WORKLOADS)[0]
        log = workload_log(name)
        reference = repro.clean(log, config(), execution="streaming")
        for chunk_records in (1, 7, 64, 10_000):
            source = InMemorySource(log, chunk_records=chunk_records)
            result = repro.clean(source, config(), execution="streaming")
            assert (
                result.clean_log.records() == reference.clean_log.records()
            ), chunk_records
            assert (
                result.metrics.comparable() == reference.metrics.comparable()
            ), chunk_records
