"""Differential test harness: every executor must tell the same story.

The observability layer's core contract is that batch, streaming and
parallel (at any worker count) runs over the same log produce *equal*
shared-stage counter ledgers (``PipelineMetrics.comparable()``) — not
just equal clean logs.  A miscounted duplicate or a dropped parse
failure is invisible to record-level equivalence tests but breaks the
ledger immediately.

For a matrix of generated workloads and hand-built edge-case logs this
suite asserts, for each executor:

* the comparable ledger equals the batch reference, counter for counter
  (including the per-label antipattern and solved breakdowns);
* the conservation laws hold (``records_in == records_out +
  duplicates_removed`` per stage, and the stage hand-offs line up);
* the clean log itself still matches batch (the pre-existing guarantee).
"""

import time

import pytest

import repro
from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.obs import NULL, Recorder
from repro.pipeline import CleaningPipeline, ExecutionConfig, PipelineConfig
from repro.workload import WorkloadConfig, generate, skyserver_catalog

KEYS = frozenset(skyserver_catalog().key_column_names())

#: (id, execution) — the five execution paths under comparison.  The
#: parallel entries use a small chunk size so that even the small test
#: logs split into several shards and genuinely exercise the fan-out.
EXECUTIONS = (
    ("batch", "batch"),
    ("streaming", "streaming"),
    ("parallel-1", ExecutionConfig(mode="parallel", workers=1, chunk_size=200)),
    ("parallel-2", ExecutionConfig(mode="parallel", workers=2, chunk_size=200)),
    ("parallel-4", ExecutionConfig(mode="parallel", workers=4, chunk_size=200)),
)

#: Generated-workload matrix: different seeds and sizes, so dedup rate,
#: antipattern mix and user count all vary across cases.
WORKLOADS = {
    "seed2018": WorkloadConfig(seed=2018, scale=0.05),
    "seed7": WorkloadConfig(seed=7, scale=0.04),
    "seed99": WorkloadConfig(seed=99, scale=0.06),
}

_workload_cache = {}


def workload_log(name):
    if name not in _workload_cache:
        _workload_cache[name] = generate(WORKLOADS[name]).log
    return _workload_cache[name]


def config(keys=KEYS):
    return PipelineConfig(detection=DetectionContext(key_columns=keys))


def run_all(log, keys=KEYS):
    """Clean ``log`` on every execution path; return {id: result}."""
    return {
        name: repro.clean(log, config(keys), execution=execution)
        for name, execution in EXECUTIONS
    }


def assert_differential(log, keys=KEYS):
    results = run_all(log, keys)
    reference = results["batch"].metrics.comparable()
    reference_records = results["batch"].clean_log.records()
    for name, result in results.items():
        assert result.metrics is not None, name
        violations = result.metrics.conservation_violations()
        assert violations == [], f"{name}: {violations}"
        assert result.metrics.comparable() == reference, name
        assert result.clean_log.records() == reference_records, name
    return results


class TestWorkloadMatrix:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_executors_emit_identical_ledgers(self, name):
        assert_differential(workload_log(name))

    def test_ledger_is_nontrivial(self):
        """Guard against vacuous equality: the matrix logs must actually
        exercise every stage counter the contract covers."""
        results = run_all(workload_log("seed2018"))
        stages = results["batch"].metrics.comparable()
        assert stages["dedup"]["counters"]["duplicates_removed"] > 0
        assert stages["parse"]["counters"]["syntax_errors"] > 0
        assert stages["parse"]["counters"]["non_select"] > 0
        assert stages["mine"]["counters"]["pattern_instances"] > 0
        assert stages["detect"]["counters"]["instances_detected"] > 0
        assert stages["detect"]["labels"]["antipatterns"]
        assert stages["solve"]["counters"]["instances_solved"] > 0

    def test_explicit_conservation_laws(self):
        """The issue's laws, spelled out against raw counters."""
        for name, result in run_all(workload_log("seed7")).items():
            stages = result.metrics.comparable()
            dedup = stages["dedup"]["counters"]
            parse = stages["parse"]["counters"]
            solve = stages["solve"]["counters"]
            assert (
                dedup["records_in"]
                == dedup["records_out"] + dedup["duplicates_removed"]
            ), name
            assert (
                parse["records_in"]
                == parse["records_out"]
                + parse["syntax_errors"]
                + parse["non_select"]
            ), name
            assert dedup["records_out"] == parse["records_in"], name
            assert parse["records_out"] == solve["records_in"], name
            assert (
                solve["records_in"]
                == solve["records_out"] + solve["queries_removed"]
            ), name


class TestEdgeCaseLogs:
    def test_empty_log(self):
        """Zero records: the ledgers must still be structurally equal
        (every canonical counter present at zero)."""
        results = assert_differential(QueryLog([]))
        stages = results["streaming"].metrics.comparable()
        assert stages["dedup"]["counters"]["records_in"] == 0
        assert stages["solve"]["counters"]["records_out"] == 0

    def test_all_duplicates(self):
        log = QueryLog(
            LogRecord(
                seq=i,
                sql="SELECT name FROM Employees WHERE id = 5",
                timestamp=i * 0.1,
                user="u",
            )
            for i in range(8)
        )
        results = assert_differential(log)
        counters = results["batch"].metrics.comparable()["dedup"]["counters"]
        assert counters["duplicates_removed"] == 7

    def test_unparseable_and_non_select(self):
        statements = [
            "SELECT name FROM Employees WHERE id = 1",
            "SELECT name FROM WHERE broken ((",
            "DROP TABLE Employees",
            "SELECT name FROM Employees WHERE id = 2",
            "INSERT INTO Employees VALUES (1)",
            "not sql at all",
        ]
        log = QueryLog(
            LogRecord(seq=i, sql=sql, timestamp=float(i * 400), user=f"u{i % 2}")
            for i, sql in enumerate(statements)
        )
        results = assert_differential(log)
        counters = results["batch"].metrics.comparable()["parse"]["counters"]
        assert counters["syntax_errors"] >= 1
        assert counters["non_select"] >= 1

    def test_multi_user_stifle_runs(self):
        log = QueryLog(
            LogRecord(
                seq=user * 100 + i,
                sql=f"SELECT name FROM Employees WHERE empId = {user * 50 + i}",
                timestamp=user * 10_000 + i * 2.0,
                user=f"user{user}",
            )
            for user in range(5)
            for i in range(6)
        )
        results = assert_differential(log, keys=frozenset({"empid"}))
        detect = results["batch"].metrics.comparable()["detect"]
        assert detect["counters"]["instances_detected"] >= 5


class TestParseCacheDifferential:
    """The parse fast path must be invisible in every output: same clean
    records, same comparable ledger, zero conservation violations —
    with the cache on (default) and off, on every executor."""

    def test_cache_off_matches_cache_on(self):
        log = workload_log("seed2018")
        reference = repro.clean(log, config(), parse_cache=False)
        assert reference.metrics.conservation_violations() == []
        ref_counters = reference.metrics.comparable()["parse"]["counters"]
        # The executor-dependent cache counters are excluded from the
        # comparable view entirely.
        assert "parse_cache_hits" not in ref_counters
        for name, execution in EXECUTIONS:
            result = repro.clean(log, config(), execution=execution)
            assert result.clean_log.records() == reference.clean_log.records(), name
            assert result.metrics.comparable() == reference.metrics.comparable(), name
            assert result.metrics.conservation_violations() == [], name
            raw = result.metrics.stages["parse"].counters
            assert raw["parse_cache_hits"] > 0, name
            assert (
                raw["parse_cache_hits"] + raw["parse_cache_misses"]
                == raw["records_in"]
            ), name

    def test_cache_disabled_books_zero_traffic(self):
        log = workload_log("seed7")
        result = repro.clean(log, config(), parse_cache=False)
        raw = result.metrics.stages["parse"].counters
        assert raw["parse_cache_hits"] == 0
        assert raw["parse_cache_misses"] == 0
        assert raw["parse_cache_evictions"] == 0


class TestInternerDifferential:
    """Template interning must be invisible in the comparable ledger
    while the raw per-executor counters stay inspectable: batch and
    streaming book the run-global dictionary size, parallel shards each
    intern their own templates (so the parse-stage sum can exceed the
    global count) and the merge stage carries the folded global size."""

    def test_interner_size_is_booked_and_excluded(self):
        log = workload_log("seed2018")
        results = run_all(log)
        sizes = {}
        for name, result in results.items():
            raw = result.metrics.stages["parse"].counters
            assert raw["interner_size"] > 0, name
            view = result.metrics.comparable()["parse"]["counters"]
            assert "interner_size" not in view, name
            sizes[name] = raw["interner_size"]

        # Batch and streaming intern one global dictionary; its size is
        # the distinct template count of the parsed stream.
        batch_result = CleaningPipeline(config()).run(log)
        distinct = len(
            {query.template_id for query in batch_result.parse_stage.queries}
        )
        assert sizes["batch"] == distinct
        assert sizes["streaming"] == distinct
        # Every shard re-interns templates the other shards also saw, so
        # the per-shard sum is at least the global dictionary size...
        for name in ("parallel-1", "parallel-2", "parallel-4"):
            assert sizes[name] >= distinct, name
        # ...while the merge stage folds the shard interners back into
        # one run-global dictionary of exactly the batch size.
        for name in ("parallel-1", "parallel-2", "parallel-4"):
            merge = results[name].metrics.stages["merge"].counters
            assert merge["interner_size"] == distinct, name

    def test_batch_result_carries_run_interner(self):
        log = workload_log("seed7")
        result = CleaningPipeline(config()).run(log)
        interner = result.interner
        assert interner is not None
        queries = result.parse_stage.queries
        assert len(interner) == len({q.template_id for q in queries})
        for query in queries:
            assert interner.fingerprint(query.interned_id) == query.template_id


class TestRecorderOverhead:
    def test_batch_overhead_is_small(self):
        """The acceptance bar is ≤5% batch overhead; asserting that
        tightly on shared CI is flaky, so this guards the order of
        magnitude (best-of-3 under a generous bound) while the E21
        benchmark records the precise ratio in BENCH_parallel.json."""
        log = workload_log("seed2018")
        pipeline = CleaningPipeline(config())
        pipeline.run(log, recorder=NULL)  # warm parse caches / imports

        def best_of(runs, recorder_factory):
            best = float("inf")
            for _ in range(runs):
                recorder = recorder_factory()
                started = time.perf_counter()
                pipeline.run(log, recorder=recorder)
                best = min(best, time.perf_counter() - started)
            return best

        plain = best_of(3, lambda: NULL)
        recorded = best_of(3, Recorder)
        assert recorded <= plain * 1.25, (
            f"recorder overhead {recorded / plain - 1.0:.1%} "
            f"(plain {plain:.3f}s, recorded {recorded:.3f}s)"
        )
