"""Differential suite: shared-memory transfer tells the same story.

``transfer="shm"`` changes *how* shard buffers reach the workers, and
nothing else.  For a generated workload and a poisoned log this suite
pins every ``transfer × workers × error-policy`` combination to the
batch reference: identical clean records, an equal ``comparable()``
ledger counter for counter, and zero conservation violations — the
same contract the executor matrix already enforces for the default
pickle transfer.
"""

from __future__ import annotations

import pytest

import repro
from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.pipeline import ExecutionConfig, PipelineConfig
from repro.workload import WorkloadConfig, generate, skyserver_catalog

KEYS = frozenset(skyserver_catalog().key_column_names())

WORKER_COUNTS = (1, 2, 4)
TRANSFERS = ("pickle", "shm")


def _execution(transfer, workers):
    # chunk_size=0: the adaptive sharder, so the matrix also exercises
    # the default shard plan rather than only the fixed legacy packing.
    return ExecutionConfig(
        mode="parallel", workers=workers, chunk_size=0, transfer=transfer
    )


@pytest.fixture(scope="module")
def workload_log():
    return generate(WorkloadConfig(seed=2018, scale=0.05)).log


@pytest.fixture(scope="module")
def workload_reference(workload_log):
    return repro.clean(
        workload_log, PipelineConfig(detection=DetectionContext(key_columns=KEYS))
    )


class TestTransferMatrix:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("transfer", TRANSFERS)
    def test_pinned_to_batch(
        self, transfer, workers, workload_log, workload_reference
    ):
        config = PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        result = repro.clean(
            workload_log, config, execution=_execution(transfer, workers)
        )
        assert result.clean_log.records() == (
            workload_reference.clean_log.records()
        )
        assert result.metrics.comparable() == (
            workload_reference.metrics.comparable()
        )
        assert result.metrics.conservation_violations() == []

    def test_transfer_accounting_matches_the_channel(self, workload_log):
        """Same payload bytes either way; segments only under shm."""
        config = PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        stats = {
            transfer: repro.clean(
                workload_log, config, execution=_execution(transfer, 2)
            ).parallel_stats
            for transfer in TRANSFERS
        }
        for transfer, pstats in stats.items():
            assert pstats.bytes_shipped > 0, transfer
            merge = pstats.metrics.stages["merge"].counters
            assert merge["bytes_shipped"] == pstats.bytes_shipped, transfer
            assert merge["shm_segments"] == pstats.shm_segments, transfer
        assert stats["pickle"].bytes_shipped == stats["shm"].bytes_shipped
        assert stats["pickle"].shm_segments == 0
        assert stats["shm"].shm_segments == stats["shm"].shard_count

    def test_transfer_override_on_clean(self, workload_log, workload_reference):
        """The ``repro.clean(..., transfer=...)`` kwarg reaches the run."""
        config = PipelineConfig(detection=DetectionContext(key_columns=KEYS))
        result = repro.clean(
            workload_log,
            config,
            execution=ExecutionConfig(mode="parallel", workers=2),
            transfer="shm",
        )
        assert result.parallel_stats.shm_segments > 0
        assert result.clean_log.records() == (
            workload_reference.clean_log.records()
        )


# ----------------------------------------------------------------------
# Poisoned log over shm: the error policies survive the new channel


def _poisoned_log():
    records = []
    seq = 0
    for step in range(15):
        for user in range(6):
            records.append(
                LogRecord(
                    seq=seq,
                    sql=(
                        "SELECT name FROM Employee "
                        f"WHERE empId = {step % 4 + user}"
                    ),
                    timestamp=float(step * 10 + user),
                    user=f"user{user}",
                )
            )
            seq += 1
    poison = [
        LogRecord(seq=900, sql="SELECT 1 FROM T", timestamp=float("nan"),
                  user="user1"),
        LogRecord(seq=901, sql=None, timestamp=42.0, user="user2"),
        LogRecord(seq=902, sql=12345, timestamp=43.0, user="user3"),
    ]
    return QueryLog(records), QueryLog(records + poison), poison


class TestPoisonedLogOverShm:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("policy", ("lenient", "quarantine"))
    def test_policies_match_batch(self, policy, workers):
        valid, poisoned, poison = _poisoned_log()
        reference = repro.clean(valid, PipelineConfig())
        config = PipelineConfig(error_policy=policy)
        result = repro.clean(
            poisoned, config, execution=_execution("shm", workers)
        )
        assert result.clean_log == reference.clean_log
        if policy == "quarantine":
            assert result.quarantine.seqs() == [r.seq for r in poison]
        else:
            assert not result.quarantine
        assert result.metrics.conservation_violations() == []
        batch = repro.clean(poisoned, config)
        assert result.metrics.comparable() == batch.metrics.comparable()
