"""Shared-memory transfer under worker crashes: no leaked segments.

The acceptance contract for ``transfer="shm"``: the parent owns every
segment, so a worker SIGKILLed (or ``os._exit``-ed) mid-shard must leak
nothing — ``/dev/shm`` holds exactly the same ``psm_*`` entries after
the run as before it, the pool is rebuilt in place, the shard is
retried, and the output stays byte-identical to the strict batch run
over the valid subset.  A follow-up run over the same warm pool must
then succeed cleanly, still without leaks.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.antipatterns import default_detectors
from repro.pipeline import ExecutionConfig, PipelineConfig
from repro.pipeline.parallel import get_worker_pool

from .faultlib import ExitOnceDetector, KillOnceDetector
from .test_fault_injection import (  # noqa: F401 - fixtures travel by import
    poison_records,
    poisoned_log,
    reference,
    valid_log,
)


def shm_segments():
    """The ``psm_*`` entries currently present in ``/dev/shm``.

    ``multiprocessing.shared_memory`` names all its segments ``psm_…``;
    comparing the set before and after a run detects leaks without
    being confused by unrelated shm users.
    """
    try:
        names = os.listdir("/dev/shm")
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        pytest.skip("/dev/shm not available on this platform")
    return {name for name in names if name.startswith("psm_")}


def _shm_parallel(workers, **knobs):
    return ExecutionConfig(
        mode="parallel",
        workers=workers,
        chunk_size=40,
        transfer="shm",
        retry_backoff=0.01,
        **knobs,
    )


class TestCrashedWorkerLeaksNothing:
    def test_sigkilled_worker_retries_without_leaking_segments(
        self, poisoned_log, reference, tmp_path
    ):
        baseline = shm_segments()
        detectors = [
            KillOnceDetector(str(tmp_path / "kill"), os.getpid())
        ] + default_detectors()
        config = PipelineConfig(error_policy="quarantine", detectors=detectors)
        generation_before = get_worker_pool(2).generation

        result = repro.clean(poisoned_log, config, execution=_shm_parallel(2))

        assert (tmp_path / "kill").exists(), "the kill fault never fired"
        pstats = result.parallel_stats
        assert pstats.shards_retried >= 1
        assert pstats.shards_failed == 0
        # every shard travelled through exactly one segment, created once
        # and reused across the retry
        assert pstats.shm_segments == pstats.shard_count
        assert pstats.bytes_shipped > 0
        # the crash forced a pool rebuild (a fresh executor generation)
        assert get_worker_pool(2).generation > generation_before
        # ...and the output contract held regardless
        assert result.clean_log == reference.clean_log
        assert result.quarantine.seqs() == [
            record.seq for record in poison_records()
        ]
        assert result.metrics.conservation_violations() == []
        # the core assertion: nothing new in /dev/shm
        assert shm_segments() == baseline, "run leaked shared-memory segments"

        # a follow-up run over the rebuilt warm pool succeeds cleanly
        again = repro.clean(poisoned_log, config, execution=_shm_parallel(2))
        assert again.parallel_stats.shards_retried == 0
        assert again.clean_log == reference.clean_log
        assert again.metrics.comparable() == result.metrics.comparable()
        assert shm_segments() == baseline

    def test_abrupt_exit_worker_retries_without_leaking_segments(
        self, valid_log, reference, tmp_path
    ):
        # os._exit skips every cleanup hook the worker might have —
        # closest stand-in for a C-level abort.
        baseline = shm_segments()
        detectors = [
            ExitOnceDetector(str(tmp_path / "exit"), os.getpid())
        ] + default_detectors()
        config = PipelineConfig(detectors=detectors)

        result = repro.clean(valid_log, config, execution=_shm_parallel(2))

        assert (tmp_path / "exit").exists(), "the exit fault never fired"
        assert result.parallel_stats.shards_retried >= 1
        assert result.parallel_stats.shards_failed == 0
        assert result.clean_log == reference.clean_log
        assert shm_segments() == baseline, "run leaked shared-memory segments"

    def test_terminally_failing_shard_releases_its_segment(self, valid_log):
        # A shard that exhausts its retries must still have its segment
        # unlinked on the way to the error policy.
        from .faultlib import AlwaysFailDetector

        baseline = shm_segments()
        config = PipelineConfig(
            error_policy="lenient",
            detectors=[AlwaysFailDetector(main_pid=os.getpid())]
            + default_detectors(),
        )
        result = repro.clean(
            valid_log,
            config,
            execution=_shm_parallel(2, max_shard_retries=0),
        )
        assert result.parallel_stats.shards_failed >= 1
        assert shm_segments() == baseline, "failed shard leaked its segment"


class TestShmEqualsPickleUnderFaults:
    def test_kill_recovery_is_transfer_mode_agnostic(
        self, poisoned_log, reference, tmp_path
    ):
        results = {}
        for kind in ("pickle", "shm"):
            detectors = [
                KillOnceDetector(str(tmp_path / f"kill-{kind}"), os.getpid())
            ] + default_detectors()
            config = PipelineConfig(
                error_policy="quarantine", detectors=detectors
            )
            execution = ExecutionConfig(
                mode="parallel",
                workers=2,
                chunk_size=40,
                transfer=kind,
                retry_backoff=0.01,
            )
            results[kind] = repro.clean(
                poisoned_log, config, execution=execution
            )
        for kind, result in results.items():
            assert result.clean_log == reference.clean_log, kind
            assert result.parallel_stats.shards_retried >= 1, kind
        assert (
            results["pickle"].metrics.comparable()
            == results["shm"].metrics.comparable()
        )
        # identical payloads shipped, only the channel differs
        assert (
            results["pickle"].parallel_stats.bytes_shipped
            == results["shm"].parallel_stats.bytes_shipped
        )
        assert results["pickle"].parallel_stats.shm_segments == 0
        assert results["shm"].parallel_stats.shm_segments > 0
