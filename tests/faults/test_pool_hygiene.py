"""Warm-pool lifecycle hygiene: no orphaned worker processes.

Reusable pools deliberately outlive ``repro.clean()`` calls, which
makes three exits load-bearing:

* a **raising run** discards its warm pool (queued shards must not keep
  running behind the caller's back);
* an explicit :func:`repro.pipeline.shutdown_worker_pools` reaps every
  parked worker;
* **interpreter exit** reaps them too (the atexit hook), proven here
  with a subprocess whose worker pids must all be dead once it exits.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.antipatterns import default_detectors
from repro.errors import ShardFailure
from repro.log import QueryLog
from repro.pipeline import (
    ExecutionConfig,
    PipelineConfig,
    get_worker_pool,
    shutdown_worker_pools,
)

from .faultlib import AlwaysFailDetector
from .test_fault_injection import valid_records


def _drain_children(timeout=15.0):
    """Wait for every multiprocessing child to exit; return stragglers."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()  # also reaps
        if not children:
            return []
        time.sleep(0.05)
    return multiprocessing.active_children()


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid reused by another user
        return True
    return True


def _wait_dead(pids, timeout=15.0):
    """Wait for all pids to disappear; return the survivors."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(_alive(pid) for pid in pids):
            return []
        time.sleep(0.05)
    return [pid for pid in pids if _alive(pid)]


@pytest.fixture
def clean_slate():
    """Start and end the test with no pools and no worker children."""
    shutdown_worker_pools()
    assert _drain_children() == []
    yield
    shutdown_worker_pools()
    assert _drain_children() == []


def _parallel(workers, **knobs):
    return ExecutionConfig(
        mode="parallel", workers=workers, chunk_size=40, **knobs
    )


class TestPoolHygiene:
    def test_successful_run_parks_a_reusable_warm_pool(self, clean_slate):
        log = QueryLog(valid_records())
        repro.clean(log, PipelineConfig(), execution=_parallel(2))
        pool = get_worker_pool(2)
        assert pool.alive, "warm pool should stay provisioned after the run"
        generation = pool.generation
        repro.clean(log, PipelineConfig(), execution=_parallel(2))
        assert get_worker_pool(2) is pool
        assert pool.generation == generation, "reuse must not re-provision"
        shutdown_worker_pools()
        assert not pool.alive
        assert _drain_children() == []

    def test_raising_run_leaves_no_workers_behind(self, clean_slate):
        config = PipelineConfig(
            detectors=[AlwaysFailDetector(main_pid=os.getpid())]
            + default_detectors()
        )
        with pytest.raises(ShardFailure):
            repro.clean(
                QueryLog(valid_records()),
                config,
                execution=_parallel(2, max_shard_retries=0, retry_backoff=0.0),
            )
        # the raising run discarded its pool — workers drain on their own,
        # with no shutdown_worker_pools() call from the caller
        assert _drain_children() == [], (
            "raising repro.clean() left worker processes running"
        )
        # and the registry recovers: the next run provisions fresh workers
        result = repro.clean(
            QueryLog(valid_records()), PipelineConfig(), execution=_parallel(2)
        )
        assert result.metrics.conservation_violations() == []

    def test_no_pool_reuse_run_leaves_no_workers_behind(self, clean_slate):
        result = repro.clean(
            QueryLog(valid_records()),
            PipelineConfig(),
            execution=_parallel(2, pool_reuse=False),
        )
        assert result.metrics.conservation_violations() == []
        assert not get_worker_pool(2).alive, (
            "pool_reuse=False must not warm the registry pool"
        )
        assert _drain_children() == [], "ephemeral pool workers survived"


#: Run a parallel clean in a fresh interpreter, print the warm pool's
#: worker pids, and exit *without* shutting anything down — the atexit
#: hook has to do it.  The parent asserts every pid is gone afterwards.
_ORPHAN_SCRIPT = """\
import multiprocessing

import repro
from repro.log import LogRecord, QueryLog
from repro.pipeline import ExecutionConfig, PipelineConfig

records = [
    LogRecord(
        seq=i,
        sql=f"SELECT name FROM Employee WHERE empId = {i % 7}",
        timestamp=float(i),
        user=f"user{i % 6}",
    )
    for i in range(160)
]
result = repro.clean(
    QueryLog(records),
    PipelineConfig(),
    execution=ExecutionConfig(mode="parallel", workers=2, chunk_size=20),
)
assert len(result.clean_log) > 0
pids = sorted(p.pid for p in multiprocessing.active_children())
assert pids, "expected parked warm-pool workers"
print("WORKER_PIDS:" + ",".join(map(str, pids)))
"""


class TestInterpreterExit:
    def test_atexit_reaps_warm_pool_workers(self, tmp_path):
        script = tmp_path / "warm_pool_exit.py"
        script.write_text(_ORPHAN_SCRIPT, encoding="utf-8")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        line = next(
            line
            for line in proc.stdout.splitlines()
            if line.startswith("WORKER_PIDS:")
        )
        pids = [int(part) for part in line.split(":", 1)[1].split(",") if part]
        assert pids
        survivors = _wait_dead(pids)
        assert survivors == [], (
            f"warm-pool workers outlived their interpreter: {survivors}"
        )
