"""Fault-tolerance suite: malformed records, crashed workers, timeouts.

The acceptance contract: under the ``quarantine`` error policy a run
over a poisoned log — malformed records of several classes plus a
worker killed mid-run — must produce exactly the clean log that a
strict batch run produces over the valid subset, quarantine exactly the
poisoned records (with reasons), and keep the ``comparable()`` metrics
ledger identical across batch / streaming / parallel(1, 2, 4).

Set ``FAULT_ARTIFACT_DIR`` to make the acceptance test dump each run's
quarantine report as JSON (the CI job uploads these on failure).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

import repro
from repro.antipatterns import default_detectors
from repro.errors import (
    INVALID_STATEMENT,
    INVALID_TIMESTAMP,
    NESTING_DEPTH,
    PARSE_ERROR,
    SHARD_FAILURE,
    RecordFailure,
    ShardFailure,
)
from repro.log import LogRecord, QueryLog
from repro.pipeline import ExecutionConfig, PipelineConfig

from .faultlib import (
    AlwaysFailDetector,
    FailOnceDetector,
    KillOnceDetector,
    SleepOnceDetector,
)

#: The executor matrix of the differential suite, reused here.
EXECUTIONS = [
    pytest.param(ExecutionConfig(mode="batch"), id="batch"),
    pytest.param(ExecutionConfig(mode="streaming"), id="streaming"),
    pytest.param(
        ExecutionConfig(mode="parallel", workers=1, chunk_size=40),
        id="parallel-1",
    ),
    pytest.param(
        ExecutionConfig(mode="parallel", workers=2, chunk_size=40),
        id="parallel-2",
    ),
    pytest.param(
        ExecutionConfig(mode="parallel", workers=4, chunk_size=40),
        id="parallel-4",
    ),
]

DEEP_SQL = (
    "SELECT a FROM T WHERE "
    + " AND ".join(f"c{i} = {i}" for i in range(3000))
)


def valid_records():
    """~160 well-formed records over 8 users, with duplicates to remove."""
    records = []
    seq = 0
    for step in range(20):
        for user in range(8):
            records.append(
                LogRecord(
                    seq=seq,
                    sql=(
                        "SELECT name FROM Employee "
                        f"WHERE empId = {step % 5 + user}"
                    ),
                    timestamp=float(step * 10 + user),
                    user=f"user{user}",
                )
            )
            seq += 1
    # a burst of sub-threshold reloads for user0 (dedup fodder)
    for extra in range(5):
        records.append(
            LogRecord(
                seq=seq,
                sql="SELECT name FROM Employee WHERE empId = 0",
                timestamp=200.0 + extra * 0.2,
                user="user0",
            )
        )
        seq += 1
    return records


def poison_records():
    """Four classes of malformed records (seqs 900+)."""
    return [
        LogRecord(seq=900, sql="SELECT 1 FROM T", timestamp=float("nan"),
                  user="user1"),
        LogRecord(seq=901, sql="SELECT 2 FROM T", timestamp=math.inf,
                  user="user2"),
        LogRecord(seq=902, sql=None, timestamp=42.0, user="user3"),
        LogRecord(seq=903, sql=12345, timestamp=43.0, user="user4"),
        LogRecord(seq=904, sql="SELEKT definitely not sql !!",
                  timestamp=44.0, user="user5"),
        LogRecord(seq=905, sql=DEEP_SQL, timestamp=45.0, user="user6"),
    ]


@pytest.fixture(scope="module")
def valid_log():
    return QueryLog(valid_records())


@pytest.fixture(scope="module")
def poisoned_log():
    return QueryLog(valid_records() + poison_records())


@pytest.fixture(scope="module")
def reference(valid_log):
    """Strict batch run over the valid subset — the ground truth."""
    return repro.clean(valid_log, PipelineConfig())


def _dump_artifact(name, result):
    directory = os.environ.get("FAULT_ARTIFACT_DIR")
    if not directory:
        return
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    payload = {"error_policy": result.config.error_policy}
    payload.update(result.quarantine.as_dict())
    (base / f"{name}.quarantine.json").write_text(
        json.dumps(payload, indent=2, default=repr) + "\n", encoding="utf-8"
    )


# ----------------------------------------------------------------------
# Malformed records × executors × policies


class TestQuarantinePolicy:
    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_poisoned_run_equals_strict_run_on_valid_subset(
        self, execution, poisoned_log, reference
    ):
        config = PipelineConfig(error_policy="quarantine")
        result = repro.clean(poisoned_log, config, execution=execution)
        _dump_artifact(f"poisoned-{execution.mode}-{execution.workers}", result)

        assert result.clean_log == reference.clean_log
        assert len(result.quarantine) == len(poison_records())
        assert result.quarantine.seqs() == [
            record.seq for record in poison_records()
        ]
        assert result.metrics.conservation_violations() == []

    def test_comparable_ledgers_identical_across_executors(self, poisoned_log):
        config = PipelineConfig(error_policy="quarantine")
        views = {}
        for param in EXECUTIONS:
            execution = param.values[0]
            result = repro.clean(poisoned_log, config, execution=execution)
            views[param.id] = result.metrics.comparable()
            assert result.metrics.conservation_violations() == []
        baseline = views["batch"]
        for name, view in views.items():
            assert view == baseline, f"{name} ledger diverges from batch"

    def test_quarantine_reasons_cover_all_classes(self, poisoned_log):
        config = PipelineConfig(error_policy="quarantine")
        result = repro.clean(poisoned_log, config)
        assert result.quarantine.by_reason() == {
            INVALID_TIMESTAMP: 2,
            INVALID_STATEMENT: 2,
            PARSE_ERROR: 1,
            NESTING_DEPTH: 1,
        }
        stages = {entry.stage for entry in result.quarantine}
        assert stages == {"validate", "parse"}

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_validate_and_parse_counters(self, execution, poisoned_log):
        config = PipelineConfig(error_policy="quarantine")
        result = repro.clean(poisoned_log, config, execution=execution)
        validate = result.metrics.stages["validate"].counters
        parse = result.metrics.stages["parse"].counters
        assert validate["records_in"] == len(poisoned_log)
        assert validate["records_quarantined"] == 4
        assert parse["records_quarantined"] == 2
        assert parse["syntax_errors"] == 0


class TestStrictPolicy:
    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_invalid_record_raises_record_failure(
        self, execution, poisoned_log
    ):
        with pytest.raises(RecordFailure) as excinfo:
            repro.clean(poisoned_log, PipelineConfig(), execution=execution)
        assert excinfo.value.stage == "validate"
        assert excinfo.value.reason in (INVALID_TIMESTAMP, INVALID_STATEMENT)

    def test_parse_failures_stay_counted_not_raised(self, valid_log):
        # blank / unparsable SQL is Section 5.3 accounting, not a fault
        records = valid_log.records() + [
            LogRecord(seq=950, sql="not sql at all", timestamp=500.0,
                      user="user0")
        ]
        result = repro.clean(QueryLog(records), PipelineConfig())
        assert result.metrics.stages["parse"].counters["syntax_errors"] == 1
        assert not result.quarantine


class TestLenientPolicy:
    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_drops_and_counts_without_capture(
        self, execution, poisoned_log, reference
    ):
        config = PipelineConfig(error_policy="lenient")
        result = repro.clean(poisoned_log, config, execution=execution)
        assert result.clean_log == reference.clean_log
        assert not result.quarantine
        validate = result.metrics.stages["validate"].counters
        assert validate["records_quarantined"] == 4
        assert result.metrics.conservation_violations() == []


# ----------------------------------------------------------------------
# Worker crash / timeout / exception recovery


def _parallel(workers, **knobs):
    return ExecutionConfig(
        mode="parallel", workers=workers, chunk_size=40, **knobs
    )


class TestWorkerRecovery:
    def test_killed_worker_is_requeued_and_run_completes(
        self, poisoned_log, reference, tmp_path
    ):
        detectors = [
            KillOnceDetector(str(tmp_path / "kill"), os.getpid())
        ] + default_detectors()
        config = PipelineConfig(
            error_policy="quarantine", detectors=detectors
        )
        result = repro.clean(
            poisoned_log, config, execution=_parallel(2, retry_backoff=0.01)
        )
        _dump_artifact("worker-kill", result)
        assert (tmp_path / "kill").exists(), "the kill fault never fired"
        assert result.parallel_stats.shards_retried >= 1
        assert result.parallel_stats.shards_failed == 0
        assert result.clean_log == reference.clean_log
        assert result.quarantine.seqs() == [
            record.seq for record in poison_records()
        ]
        assert result.metrics.conservation_violations() == []

    def test_transient_worker_exception_is_retried(
        self, valid_log, reference, tmp_path
    ):
        detectors = [
            FailOnceDetector(str(tmp_path / "fail"), os.getpid())
        ] + default_detectors()
        config = PipelineConfig(detectors=detectors)  # strict is fine:
        # a detector exception is a fault, not a record verdict
        result = repro.clean(
            valid_log, config, execution=_parallel(2, retry_backoff=0.01)
        )
        assert (tmp_path / "fail").exists()
        assert result.parallel_stats.shards_retried >= 1
        assert result.clean_log == reference.clean_log

    def test_hung_worker_hits_task_timeout_and_requeues(
        self, valid_log, reference, tmp_path
    ):
        detectors = [
            SleepOnceDetector(
                str(tmp_path / "sleep"), os.getpid(), seconds=8.0
            )
        ] + default_detectors()
        config = PipelineConfig(detectors=detectors)
        result = repro.clean(
            valid_log,
            config,
            execution=_parallel(2, task_timeout=1.0, retry_backoff=0.01),
        )
        assert (tmp_path / "sleep").exists()
        assert result.parallel_stats.shards_retried >= 1
        assert result.clean_log == reference.clean_log

    def test_inline_path_retries_too(self, valid_log, reference, tmp_path):
        # workers=1 never forks; the retry loop must still apply
        detectors = [
            FailOnceDetector(str(tmp_path / "inline-fail"))
        ] + default_detectors()
        config = PipelineConfig(detectors=detectors)
        result = repro.clean(
            valid_log, config, execution=_parallel(1, retry_backoff=0.01)
        )
        assert result.parallel_stats.shards_retried >= 1
        assert result.clean_log == reference.clean_log


class TestTerminalShardFailure:
    def test_strict_raises_shard_failure(self, valid_log):
        config = PipelineConfig(
            detectors=[AlwaysFailDetector()] + default_detectors()
        )
        with pytest.raises(ShardFailure) as excinfo:
            repro.clean(
                valid_log,
                config,
                execution=_parallel(
                    2, max_shard_retries=1, retry_backoff=0.01
                ),
            )
        assert excinfo.value.attempts == 2

    def test_quarantine_sets_whole_shards_aside(self, valid_log):
        config = PipelineConfig(
            error_policy="quarantine",
            detectors=[AlwaysFailDetector()] + default_detectors(),
        )
        result = repro.clean(
            valid_log,
            config,
            execution=_parallel(1, max_shard_retries=0),
        )
        assert len(result.clean_log) == 0
        assert result.parallel_stats.shards_failed >= 1
        assert result.quarantine.by_reason() == {
            SHARD_FAILURE: len(valid_log)
        }
        assert sorted(result.quarantine.seqs()) == [
            record.seq for record in valid_log
        ]

    def test_lenient_drops_failed_shards(self, valid_log):
        config = PipelineConfig(
            error_policy="lenient",
            detectors=[AlwaysFailDetector()] + default_detectors(),
        )
        result = repro.clean(
            valid_log,
            config,
            execution=_parallel(1, max_shard_retries=0),
        )
        assert len(result.clean_log) == 0
        assert not result.quarantine
        assert result.parallel_stats.shards_failed >= 1
        merge = result.metrics.stages["merge"].counters
        assert merge["shards_failed"] == result.parallel_stats.shards_failed


# ----------------------------------------------------------------------
# Degenerate fan-outs (the Pool(processes=0) regression)


class TestDegenerateFanout:
    def test_empty_log_parallel(self):
        for workers in (0, 1, 2, 4):
            result = repro.clean(
                QueryLog(), PipelineConfig(), execution=_parallel(workers)
            )
            assert len(result.clean_log) == 0
            assert result.parallel_stats.shard_count == 0
            assert result.metrics.conservation_violations() == []

    def test_fewer_shards_than_workers(self, reference):
        # one user → one indivisible shard, far fewer than the workers
        records = [
            LogRecord(seq=i, sql=f"SELECT name FROM Employee WHERE empId = {i}",
                      timestamp=float(i * 5), user="solo")
            for i in range(3)
        ]
        log = QueryLog(records)
        batch = repro.clean(log, PipelineConfig())
        result = repro.clean(log, PipelineConfig(), execution=_parallel(4))
        assert result.clean_log == batch.clean_log
        assert result.parallel_stats.shard_count == 1
        assert result.metrics.comparable() == batch.metrics.comparable()
