"""Crash-safety of the template dictionary sidecar.

``TemplateCache.save_dict`` promises that a kill — even SIGKILL — at any
instant leaves the previously saved dictionary intact: the new blob is
written to a temp file, fsynced, and published with one atomic
``os.replace``.  The test kills a child at the worst possible moment
(tmp written, rename not yet issued) and checks the survivor.
"""

import os
import signal
import subprocess
import sys

from repro.log import LogRecord
from repro.skeleton.cache import TemplateCache

PRIOR_STATEMENTS = [
    "SELECT a FROM t WHERE b = 1",
    "SELECT name FROM employee WHERE empid = 8",
]

#: The child warms a cache with *different* templates, then dies by its
#: own hand inside ``save_dict``, immediately before ``os.replace``.
CHILD = r"""
import os, signal, sys
sys.path.insert(0, "src")
from repro.log import LogRecord
from repro.skeleton.cache import TemplateCache

path = sys.argv[1]
cache = TemplateCache()
for i, sql in enumerate([
    "SELECT x FROM u WHERE k = 9",
    "SELECT y FROM v WHERE n = 'z'",
]):
    cache.build(LogRecord(seq=i, sql=sql, timestamp=float(i)))

def kill_before_rename(src, dst):
    os.kill(os.getpid(), signal.SIGKILL)

os.replace = kill_before_rename
cache.save_dict(path)
raise SystemExit("unreachable: the process killed itself above")
"""


def prior_dict(path):
    cache = TemplateCache()
    for i, sql in enumerate(PRIOR_STATEMENTS):
        cache.build(LogRecord(seq=i, sql=sql, timestamp=float(i)))
    cache.save_dict(path)
    return sorted(cache.dict_witnesses())


class TestSigkillDuringSave:
    def test_prior_dict_survives_a_kill_mid_save(self, tmp_path):
        path = tmp_path / "templates.dict"
        expected = prior_dict(path)

        child = subprocess.run(
            [sys.executable, "-c", CHILD, str(path)],
            cwd="/root/repo",
            env={**os.environ, "PYTHONPATH": "src"},
            timeout=120,
        )
        assert child.returncode == -signal.SIGKILL

        # The rename never happened: the published dictionary is still
        # the prior run's, bit for bit valid.
        witnesses = TemplateCache.load_dict(path)
        assert witnesses is not None
        assert sorted(witnesses) == expected

        # The orphaned temp file does not block the next save, and the
        # next save publishes the new content atomically as usual.
        cache = TemplateCache()
        cache.build(
            LogRecord(seq=0, sql="SELECT q FROM w WHERE r = 3", timestamp=0.0)
        )
        cache.save_dict(path)
        assert TemplateCache.load_dict(path) == cache.dict_witnesses()

    def test_kill_with_no_prior_dict_leaves_no_torn_file(self, tmp_path):
        path = tmp_path / "templates.dict"
        child = subprocess.run(
            [sys.executable, "-c", CHILD, str(path)],
            cwd="/root/repo",
            env={**os.environ, "PYTHONPATH": "src"},
            timeout=120,
        )
        assert child.returncode == -signal.SIGKILL
        # No dictionary was ever published — a later run starts cold
        # (silently), it never sees a half-written blob.
        assert not path.exists()
        assert TemplateCache.load_dict(path) is None
