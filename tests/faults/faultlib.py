"""Deterministic fault injectors for the fault-tolerance suite.

Each injector is a :class:`~repro.antipatterns.base.Detector` that never
detects anything — it exists purely to misbehave at a controlled moment
inside the ``detect`` stage, which runs both in the parent process
(batch / streaming / inline parallel) and inside pool workers.

Two mechanisms keep the chaos deterministic:

* **sentinel files** — "fire once" detectors claim a sentinel with
  ``O_CREAT | O_EXCL`` before misbehaving, so exactly one process fires
  no matter how many workers race;
* **main-pid guard** — detectors constructed with the test process's
  pid only fire in *other* processes (pool workers), so the batch and
  streaming reference runs in the test process stay untouched.

Everything here is module-level and plain-data so the instances pickle
into ``ProcessPoolExecutor`` workers under any start method.
"""

from __future__ import annotations

import os
import signal
import time
from typing import List, Optional, Sequence


def _claim(sentinel: str) -> bool:
    """Atomically claim ``sentinel``; True for exactly one caller."""
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


class _FaultDetector:
    """Base: a detector that detects nothing but may misbehave once.

    :param sentinel: path claimed before firing; ``None`` fires always.
    :param main_pid: when set, only fire in processes *other* than this
        pid (i.e. only inside pool workers).
    """

    label = "fault"

    def __init__(
        self, sentinel: Optional[str] = None, main_pid: Optional[int] = None
    ) -> None:
        self.sentinel = sentinel
        self.main_pid = main_pid

    def _should_fire(self) -> bool:
        if self.main_pid is not None and os.getpid() == self.main_pid:
            return False
        if self.sentinel is not None:
            return _claim(self.sentinel)
        return True

    def _fire(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def detect(self, blocks: Sequence, context) -> List:
        if self._should_fire():
            self._fire()
        return []


class KillOnceDetector(_FaultDetector):
    """SIGKILLs its own process the first time it runs in a worker —
    the parent sees ``BrokenProcessPool``, exactly like an OOM kill."""

    label = "faultKill"

    def _fire(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)


class ExitOnceDetector(_FaultDetector):
    """Dies via ``os._exit`` the first time it runs in a worker — an
    abnormal exit *without* a signal (no atexit hooks, no cleanup), the
    way a worker hitting a C-level abort or a container limit dies."""

    label = "faultExit"

    def _fire(self) -> None:
        os._exit(17)


class SleepOnceDetector(_FaultDetector):
    """Sleeps long enough to blow a ``task_timeout`` budget, once."""

    label = "faultSleep"

    def __init__(
        self,
        sentinel: Optional[str] = None,
        main_pid: Optional[int] = None,
        seconds: float = 3.0,
    ) -> None:
        super().__init__(sentinel, main_pid)
        self.seconds = seconds

    def _fire(self) -> None:
        time.sleep(self.seconds)


class FailOnceDetector(_FaultDetector):
    """Raises a transient ``RuntimeError`` the first time it runs."""

    label = "faultFail"

    def _fire(self) -> None:
        raise RuntimeError("injected transient detector failure")


class AlwaysFailDetector(_FaultDetector):
    """Raises every single time — the unrecoverable shard."""

    label = "faultAlways"

    def detect(self, blocks: Sequence, context) -> List:
        if self.main_pid is None or os.getpid() != self.main_pid:
            raise RuntimeError("injected permanent detector failure")
        return []
