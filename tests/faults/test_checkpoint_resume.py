"""Kill-and-resume fault test for the checkpoint layer.

A child process runs a checkpointed streaming clean over a columnar
store through a deliberately slowed source.  The parent watches the
checkpoint's ``state.json`` and SIGKILLs the child mid-run — after at
least two chunks are committed but before the run completes — exactly
like an OOM kill or a pre-empted spot instance.  A second child then
resumes from the half-written checkpoint and must reproduce the
uninterrupted result byte for byte.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.log import write_jsonl
from repro.store import write_columnar
from repro.workload import generate_log

#: Child program: clean a store with checkpointing, write the clean log.
#: ``slow`` mode sleeps after every chunk so the parent can kill it
#: between two checkpoint commits; ``resume`` mode picks the run back up.
CHILD = """
import sys, time
import repro
from repro.log import write_jsonl
from repro.store import ColumnarSource

store, checkpoint_dir, out, mode = sys.argv[1:5]


class SlowSource(ColumnarSource):
    # Same fingerprint as ColumnarSource, so the resume run can use the
    # plain class; the sleep sits AFTER the yield so every chunk is fed
    # and checkpointed before the window in which the parent kills us.
    def open_chunks(self, *, start_chunk=0):
        for chunk in super().open_chunks(start_chunk=start_chunk):
            yield chunk
            time.sleep(0.15)


source = SlowSource(store) if mode == "slow" else ColumnarSource(store)
result = repro.clean(
    source,
    execution="streaming",
    checkpoint_dir=checkpoint_dir,
    resume=(mode == "resume"),
)
write_jsonl(result.clean_log, out)
"""

KILL_DEADLINE = 60.0


def run_child(tmp_path, store, checkpoint_dir, out, mode):
    return subprocess.Popen(
        [sys.executable, "-c", CHILD, str(store), str(checkpoint_dir),
         str(out), mode],
        env={**os.environ, "PYTHONPATH": "src"},
        cwd="/root/repo",
    )


def wait_for_partial_state(state_path, *, min_chunks=2):
    """Block until ``state.json`` shows a mid-run checkpoint; return it."""
    deadline = time.monotonic() + KILL_DEADLINE
    while time.monotonic() < deadline:
        if state_path.exists():
            try:
                state = json.loads(state_path.read_text(encoding="utf-8"))
            except ValueError:  # pragma: no cover - torn read, retry
                continue
            if state["complete"]:  # pragma: no cover - child outran us
                return state
            if state["chunks_done"] >= min_chunks:
                return state
        time.sleep(0.01)
    raise AssertionError("child never reached a mid-run checkpoint")


class TestKillAndResume:
    def test_sigkill_mid_run_then_resume_reproduces_result(self, tmp_path):
        log = generate_log(seed=2018, scale=0.03)
        store = tmp_path / "log.columnar"
        # Small chunks => many checkpoint commits => a wide kill window.
        write_columnar(log, store, chunk_records=40)

        reference = tmp_path / "reference.jsonl"
        result = repro.clean(str(store), execution="streaming")
        write_jsonl(result.clean_log, reference)

        checkpoint_dir = tmp_path / "ck"
        victim_out = tmp_path / "victim.jsonl"
        victim = run_child(tmp_path, store, checkpoint_dir, victim_out, "slow")
        try:
            state = wait_for_partial_state(checkpoint_dir / "state.json")
            assert not state["complete"], "child finished before the kill"
            victim.kill()
        finally:
            victim.wait(timeout=30)
        assert victim.returncode == -signal.SIGKILL
        assert not victim_out.exists(), "killed child must not have output"

        resumed_out = tmp_path / "resumed.jsonl"
        resumer = run_child(tmp_path, store, checkpoint_dir, resumed_out,
                            "resume")
        assert resumer.wait(timeout=120) == 0
        assert resumed_out.read_bytes() == reference.read_bytes()

        final = json.loads(
            (checkpoint_dir / "state.json").read_text(encoding="utf-8")
        )
        assert final["complete"] is True
        assert final["chunks_done"] >= state["chunks_done"]

    def test_resume_in_process_matches_after_simulated_kill(self, tmp_path):
        """Same contract without subprocesses: abandon a run mid-loop."""
        from repro.obs import Recorder
        from repro.pipeline.config import ExecutionConfig, PipelineConfig
        from repro.store import ColumnarSource, clean_streaming_source
        from repro.store.checkpoint import (
            STATE_VERSION,
            RunCheckpoint,
            config_digest,
        )
        from repro.pipeline.streaming import StreamingCleaner

        log = generate_log(seed=7, scale=0.03)
        store = tmp_path / "log.columnar"
        write_columnar(log, store, chunk_records=60)
        config = PipelineConfig(execution=ExecutionConfig(mode="streaming"))

        source = ColumnarSource(store)
        reference, _ = clean_streaming_source(source, config, Recorder())

        # Replay the driver's own loop for two chunks, then walk away —
        # the moral equivalent of a kill between two commits.
        checkpoint = RunCheckpoint(tmp_path / "ck")
        recorder = Recorder()
        cleaner = StreamingCleaner(config, recorder=recorder)
        for index, chunk in enumerate(source.open_chunks()):
            if index >= 2:
                break
            checkpoint.spill_chunk(index, list(cleaner.feed(chunk)))
            checkpoint.save_state({
                "version": STATE_VERSION,
                "source_fingerprint": source.fingerprint(),
                "config_digest": config_digest(config),
                "chunks_done": index + 1,
                "complete": False,
                "cleaner": cleaner.export_state(),
                "metrics": recorder.metrics.as_dict(),
            })

        resumed, _ = clean_streaming_source(
            source, config, Recorder(),
            checkpoint_dir=tmp_path / "ck", resume=True,
        )
        assert resumed.records() == reference.records()
